package bench

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"hpmp/internal/obs"
)

// TestSpecMetadataComplete pins the registry's API contract: every
// registered experiment carries the full spec — id, title, the paper
// figure it regenerates, and a valid cost class.
func TestSpecMetadataComplete(t *testing.T) {
	for _, e := range All() {
		if e.ID == "" || e.Title == "" || e.Run == nil {
			t.Errorf("%q: incomplete spec: %+v", e.ID, e)
		}
		if e.Figure == "" {
			t.Errorf("%s: missing paper figure reference", e.ID)
		}
		switch e.Cost {
		case CostLight, CostMedium, CostHeavy:
		default:
			t.Errorf("%s: invalid cost class %q", e.ID, e.Cost)
		}
	}
}

// TestSpecCounterPrefixesGroundTruth runs every light experiment under the
// quick config and checks that each counter prefix the spec declares
// actually shows up in the run's merged snapshot — the spec must describe
// what the experiment observes, not what someone guessed.
func TestSpecCounterPrefixesGroundTruth(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the light experiments")
	}
	cfg := DefaultConfig()
	cfg.Quick = true
	var light []Experiment
	for _, e := range All() {
		if e.Cost == CostLight {
			light = append(light, e)
		}
	}
	if len(light) == 0 {
		t.Fatal("no light experiments registered")
	}
	outcomes := RunAll(context.Background(), cfg, light, RunOptions{Parallel: 4}, nil)
	for _, o := range outcomes {
		if !o.OK() {
			t.Errorf("%s: %v", o.Experiment.ID, o.Err)
			continue
		}
		snap := o.Result.Counters.Snapshot()
		for _, prefix := range o.Experiment.Counters {
			found := false
			for name := range snap {
				if strings.HasPrefix(name, prefix) {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("%s: declared counter prefix %q matched nothing in the snapshot (%d counters)",
					o.Experiment.ID, prefix, len(snap))
			}
		}
	}
}

// TestRunAllTracing checks the tracing plumb-through: with TraceEvery set,
// a successful outcome exposes a tracer whose events came from the
// experiment's own systems, and MetricsFor folds its summary in.
func TestRunAllTracing(t *testing.T) {
	if testing.Short() {
		t.Skip("boots simulated systems")
	}
	cfg := DefaultConfig()
	cfg.Quick = true
	exp, ok := ByID("fig10")
	if !ok {
		t.Fatal("fig10 not registered")
	}
	outcomes := RunAll(context.Background(), cfg, []Experiment{exp},
		RunOptions{Parallel: 1, TraceEvery: 8, TraceKeep: 128}, nil)
	o := outcomes[0]
	if !o.OK() {
		t.Fatalf("fig10 failed: %v", o.Err)
	}
	if o.Trace == nil {
		t.Fatal("tracing requested but Outcome.Trace is nil")
	}
	if o.Trace.Seen() == 0 || o.Trace.Kept() == 0 {
		t.Fatalf("tracer attached but empty: seen=%d kept=%d", o.Trace.Seen(), o.Trace.Kept())
	}
	if o.Trace.SampleEvery() != 8 {
		t.Errorf("sample stride %d, want 8", o.Trace.SampleEvery())
	}

	m := MetricsFor(o, true)
	if m.Trace == nil || m.Trace.Seen != o.Trace.Seen() {
		t.Errorf("MetricsFor lost the trace summary: %+v", m.Trace)
	}
	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`"schema": "hpmp-metrics/v1"`,
		`"experiment": "fig10"`,
		`"figure": "` + exp.Figure + `"`,
		`"status": "ok"`,
		`"quick": true`,
		`"counters"`,
		`"derived"`,
		`"histograms"`,
		`"mmu.access_latency"`,
		`"trace"`,
	} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("metrics JSON missing %s:\n%s", want, buf.String())
		}
	}
	if err := obs.WriteTrace(&buf, o.Experiment.ID, o.Trace); err != nil {
		t.Fatalf("trace did not serialize: %v", err)
	}
}

// TestRunAllNoTracingByDefault: without TraceEvery the outcome carries no
// tracer, so the hooks stayed nil for the whole run.
func TestRunAllNoTracingByDefault(t *testing.T) {
	exps := []Experiment{fakeExp("nt", okRun("nt"))}
	outcomes := RunAll(context.Background(), DefaultConfig(), exps, RunOptions{Parallel: 1}, nil)
	if outcomes[0].Trace != nil {
		t.Error("tracer attached without TraceEvery")
	}
}

// TestMetricsForFailedOutcome: failures export too — empty counters, the
// failure status, no trace.
func TestMetricsForFailedOutcome(t *testing.T) {
	exps := []Experiment{fakeExp("mf", func(cfg Config) (*Result, error) {
		return nil, errors.New("boom")
	})}
	outcomes := RunAll(context.Background(), DefaultConfig(), exps,
		RunOptions{Parallel: 1, TraceEvery: 1}, nil)
	m := MetricsFor(outcomes[0], false)
	if m.Status != string(StatusError) {
		t.Errorf("status %q, want error", m.Status)
	}
	if len(m.Counters) != 0 || m.Trace != nil {
		t.Errorf("failed outcome leaked data: %+v", m)
	}
	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"counters": {}`) {
		t.Errorf("counters must marshal as an empty object:\n%s", buf.String())
	}
}

// TestRunAllProgressCompletionOrder: the progress callback fires once per
// experiment with a monotonically increasing done count, independent of
// emit's input-order stream.
func TestRunAllProgressCompletionOrder(t *testing.T) {
	exps := []Experiment{
		fakeExp("p1", func(cfg Config) (*Result, error) {
			time.Sleep(20 * time.Millisecond)
			return okRun("p1")(cfg)
		}),
		fakeExp("p2", okRun("p2")),
		fakeExp("p3", okRun("p3")),
	}
	var dones []int
	var ids []string
	outcomes := RunAll(context.Background(), DefaultConfig(), exps,
		RunOptions{
			Parallel: 3,
			Progress: func(done, total int, o Outcome) {
				if total != 3 {
					t.Errorf("total = %d, want 3", total)
				}
				dones = append(dones, done)
				ids = append(ids, o.Experiment.ID)
			},
		}, nil)
	if len(outcomes) != 3 || len(dones) != 3 {
		t.Fatalf("progress fired %d times for %d outcomes", len(dones), len(outcomes))
	}
	for i, d := range dones {
		if d != i+1 {
			t.Errorf("done sequence %v, want 1,2,3", dones)
			break
		}
	}
	// The slow p1 should not be first; completion order is what progress
	// reports. (Not asserted strictly — scheduling — but all three appear.)
	seen := map[string]bool{}
	for _, id := range ids {
		seen[id] = true
	}
	if len(seen) != 3 {
		t.Errorf("progress repeated or skipped experiments: %v", ids)
	}
}
