package bench

import (
	"fmt"

	"hpmp/internal/cpu"
	"hpmp/internal/kernel"
	"hpmp/internal/monitor"
	"hpmp/internal/simcfg"
	"hpmp/internal/stats"
	"hpmp/internal/workloads"
)

func init() {
	register(ExperimentSpec{
		ID:       "fig12ab",
		Title:    "FunctionBench (Rocket + BOOM, normalized latency)",
		Figure:   "Fig. 12-a/b",
		Counters: []string{"cpu.", "mmu.", "mem.", "kernel."},
		Cost:     CostHeavy,
		Run:      runFig12ab,
	})
	register(ExperimentSpec{
		ID:       "fig12c",
		Title:    "Serverless image-processing chain (image size sweep)",
		Figure:   "Fig. 12-c",
		Counters: []string{"cpu.", "mmu.", "mem.", "kernel.", "monitor."},
		Cost:     CostMedium,
		Run:      runFig12c,
	})
	register(ExperimentSpec{
		ID:       "fig17",
		Title:    "FunctionBench with 8- vs 32-entry PWC (Rocket)",
		Figure:   "Fig. 17",
		Counters: []string{"cpu.", "mmu.", "mem.", "kernel.", "monitor.", "ptw."},
		Cost:     CostHeavy,
		Run:      runFig17,
	})
	register(ExperimentSpec{
		ID:       "fig3c",
		Title:    "Preview: serverless latency, Table vs Segment (BOOM)",
		Figure:   "Fig. 3-c",
		Counters: []string{"cpu.", "mmu.", "mem.", "kernel.", "monitor."},
		Cost:     CostMedium,
		Run:      runFig3c,
	})
}

func funcBenchForConfig(cfg Config) []workloads.Workload {
	if !cfg.Quick {
		return workloads.FuncBenchSuite()
	}
	return []workloads.Workload{
		&workloads.Chameleon{Rows: 24, Cols: 8},
		&workloads.DD{Blocks: 48, BlockSize: 4096},
		&workloads.GzipFunc{N: 6 * 1024},
		&workloads.Linpack{N: 16},
		&workloads.Matmul{N: 16},
		&workloads.PyAES{Blocks: 32},
		&workloads.ImageFunc{Width: 40, Height: 40},
	}
}

// runServerless executes one function as a fresh short-lived process
// (cold TLB, demand paging — the serverless regime) and returns the
// invocation latency in cycles: spawn → run → exit.
func runServerless(sys *System, w workloads.Workload) (uint64, error) {
	start := sys.Mach.Core.Now
	p, err := sys.Kern.Spawn(kernel.Image{Name: w.Name(), TextPages: 48, DataPages: 32, HeapPages: 96 * 1024})
	if err != nil {
		return 0, err
	}
	if err := sys.Kern.SwitchTo(p.PID); err != nil {
		return 0, err
	}
	e := &kernel.Env{K: sys.Kern, P: p}
	// Cold start: the function's entry code pages fault in.
	if err := e.FetchAt(p.Code()); err != nil {
		return 0, err
	}
	if _, err := w.Run(e); err != nil {
		return 0, err
	}
	if err := sys.Kern.Exit(p.PID); err != nil {
		return 0, err
	}
	return sys.Mach.Core.Now - start, nil
}

// collectServerless measures all functions under the given platform for
// the three TEE modes plus the non-secure Host-PMP baseline.
func collectServerless(plat cpu.Platform, cfg Config, pwcEntries int) (map[string]map[string]uint64, []string, error) {
	if pwcEntries > 0 {
		plat.MMU.PWCEntries = pwcEntries
	}
	suite := funcBenchForConfig(cfg)
	out := map[string]map[string]uint64{}
	var names []string
	for _, w := range suite {
		names = append(names, w.Name())
		out[w.Name()] = map[string]uint64{}
	}

	run := func(label string, sysFn func() (*System, error)) error {
		sys, err := sysFn()
		if err != nil {
			return err
		}
		// A warm host process exists (the invoker); functions spawn fresh.
		if _, err := sys.NewEnv("invoker", 1024); err != nil {
			return err
		}
		// Two invocations per function, averaged: serverless platforms
		// report mean latency, and the second run damps DRAM/cache layout
		// noise between isolation modes. Workload.ServerlessReps scales
		// the invocation count for churn studies.
		reps := simcfg.Or(cfg.Workload.ServerlessReps, 2)
		for _, w := range suite {
			var total uint64
			for rep := 0; rep < reps; rep++ {
				cycles, err := runServerless(sys, w)
				if err != nil {
					return fmt.Errorf("%s/%s: %w", label, w.Name(), err)
				}
				total += cycles
			}
			out[w.Name()][label] = total / uint64(reps)
		}
		return nil
	}

	if err := run("Host-PMP", func() (*System, error) { return NewHostSystem(plat, cfg) }); err != nil {
		return nil, nil, err
	}
	for _, mode := range AllModes {
		mode := mode
		if err := run("PL-"+ModeNames[mode], func() (*System, error) { return NewSystem(plat, mode, cfg) }); err != nil {
			return nil, nil, err
		}
	}
	return out, names, nil
}

func runFig12ab(cfg Config) (*Result, error) {
	res := &Result{ID: "fig12ab", Title: "FunctionBench latency normalized to Penglai-PMP"}
	for _, p := range []struct {
		name string
		plat cpu.Platform
	}{{"Rocket", cpu.RocketPlatform()}, {"BOOM", cpu.BOOMPlatform()}} {
		data, names, err := collectServerless(p.plat, cfg, 0)
		if err != nil {
			return nil, err
		}
		cols := []string{"Host-PMP", "PL-PMP", "PL-PMPT", "PL-HPMP"}
		t := stats.NewTable(fmt.Sprintf("FunctionBench (%s)", p.name),
			append([]string{"Function"}, cols...)...)
		var pmptOvh, hpmpOvh []float64
		for _, n := range names {
			base := float64(data[n]["PL-PMP"])
			row := []string{n}
			for _, c := range cols {
				row = append(row, fmt.Sprintf("%.1f", stats.Ratio(float64(data[n][c]), base)))
			}
			t.AddRow(row...)
			pmptOvh = append(pmptOvh, stats.Ratio(float64(data[n]["PL-PMPT"]), base)-100)
			hpmpOvh = append(hpmpOvh, stats.Ratio(float64(data[n]["PL-HPMP"]), base)-100)
		}
		res.Tables = append(res.Tables, t)
		lo1, hi1 := stats.MinMax(pmptOvh)
		lo2, hi2 := stats.MinMax(hpmpOvh)
		res.Notes = append(res.Notes, fmt.Sprintf(
			"%s: PMPT overhead %.1f%%–%.1f%% (avg %.1f%%); HPMP %.1f%%–%.1f%% (avg %.1f%%).",
			p.name, lo1, hi1, stats.Mean(pmptOvh), lo2, hi2, stats.Mean(hpmpOvh)))
	}
	res.Notes = append(res.Notes,
		"Paper: PMPT +1.0–14.3% Rocket (avg 5.1%), +5.5–20.3% BOOM (avg 14.1%); HPMP avg 2.0%/3.5%.")
	return res, nil
}

// runChain executes the 4-function image chain: each stage is a fresh
// process; the payload moves through monitor IPC (or plain copy on the
// Host system).
func runChain(sys *System, size int) (uint64, error) {
	chain := &workloads.ImageChain{Size: size}
	start := sys.Mach.Core.Now
	var payload []byte
	for stage := 0; stage < workloads.StageCount; stage++ {
		p, err := sys.Kern.Spawn(kernel.Image{
			Name: fmt.Sprintf("img-%d", stage), TextPages: 32, DataPages: 16, HeapPages: 64 * 1024})
		if err != nil {
			return 0, err
		}
		if err := sys.Kern.SwitchTo(p.PID); err != nil {
			return 0, err
		}
		e := &kernel.Env{K: sys.Kern, P: p}
		if err := e.FetchAt(p.Code()); err != nil {
			return 0, err
		}
		payload, err = chain.RunStage(e, stage, payload)
		if err != nil {
			return 0, err
		}
		if sys.Mon != nil {
			// Hand the payload to the next function through the monitor.
			if _, err := sys.Mon.SendMessage(monitor.HostDomain, payload); err != nil {
				return 0, err
			}
			if _, _, err := sys.Mon.ReceiveMessage(monitor.HostDomain); err != nil {
				return 0, err
			}
		}
		if err := sys.Kern.Exit(p.PID); err != nil {
			return 0, err
		}
	}
	return sys.Mach.Core.Now - start, nil
}

func runFig12c(cfg Config) (*Result, error) {
	sizes := []int{32, 64, 128, 256}
	if cfg.Quick {
		sizes = []int{32, 64}
	}
	res := &Result{ID: "fig12c", Title: "Image-processing chain, normalized latency vs image size"}
	t := stats.NewTable("Fig 12-c (Rocket)", "Size", "PL-PMP", "PL-PMPT", "PL-HPMP",
		"PL-PMP Mcyc")
	for _, size := range sizes {
		lat := map[monitor.Mode]uint64{}
		for _, mode := range AllModes {
			sys, err := NewSystem(cpu.RocketPlatform(), mode, cfg)
			if err != nil {
				return nil, err
			}
			if _, err := sys.NewEnv("gateway", 1024); err != nil {
				return nil, err
			}
			c, err := runChain(sys, size)
			if err != nil {
				return nil, fmt.Errorf("size %d mode %v: %w", size, mode, err)
			}
			lat[mode] = c
		}
		base := float64(lat[monitor.ModePMP])
		t.AddRow(fmt.Sprintf("%dx%d", size, size),
			"100.0",
			fmt.Sprintf("%.1f", stats.Ratio(float64(lat[monitor.ModePMPT]), base)),
			fmt.Sprintf("%.1f", stats.Ratio(float64(lat[monitor.ModeHPMP]), base)),
			fmt.Sprintf("%.2f", base/1e6))
	}
	res.Tables = append(res.Tables, t)
	res.Notes = append(res.Notes,
		"Paper: PMPT overhead shrinks 29.7%→1.6% as the image grows (compute amortizes); HPMP 0.3–6.7%.")
	return res, nil
}

func runFig17(cfg Config) (*Result, error) {
	res := &Result{ID: "fig17", Title: "FunctionBench with different PWC sizes (Rocket)"}
	data8, names, err := collectServerless(cpu.RocketPlatform(), cfg, 8)
	if err != nil {
		return nil, err
	}
	data32, _, err := collectServerless(cpu.RocketPlatform(), cfg, 32)
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("Fig 17", "Function",
		"PMP(8)", "PMP(32)", "PMPT(8)", "PMPT(32)", "HPMP(8)", "HPMP(32)")
	for _, n := range names {
		base := float64(data8[n]["PL-PMP"])
		t.AddRow(n,
			"100.0",
			fmt.Sprintf("%.1f", stats.Ratio(float64(data32[n]["PL-PMP"]), base)),
			fmt.Sprintf("%.1f", stats.Ratio(float64(data8[n]["PL-PMPT"]), base)),
			fmt.Sprintf("%.1f", stats.Ratio(float64(data32[n]["PL-PMPT"]), base)),
			fmt.Sprintf("%.1f", stats.Ratio(float64(data8[n]["PL-HPMP"]), base)),
			fmt.Sprintf("%.1f", stats.Ratio(float64(data32[n]["PL-HPMP"]), base)))
	}
	res.Tables = append(res.Tables, t)
	res.Notes = append(res.Notes,
		"Paper: a larger PWC helps little for short-lived functions; HPMP(8) still beats PMPT(32).")
	return res, nil
}

func runFig3c(cfg Config) (*Result, error) {
	data, names, err := collectServerless(cpu.BOOMPlatform(), cfg, 0)
	if err != nil {
		return nil, err
	}
	var ratios []float64
	worst := 0.0
	for _, n := range names {
		r := stats.Ratio(float64(data[n]["PL-PMPT"]), float64(data[n]["PL-PMP"]))
		ratios = append(ratios, r)
		if r > worst {
			worst = r
		}
	}
	res := &Result{ID: "fig3c", Title: "Serverless latency normalized to Segment (BOOM)"}
	t := stats.NewTable("Fig 3-c", "Case", "Segment", "Table")
	t.AddRow("Avg", "100.0", fmt.Sprintf("%.1f", stats.Mean(ratios)))
	t.AddRow("Worst", "100.0", fmt.Sprintf("%.1f", worst))
	res.Tables = append(res.Tables, t)
	return res, nil
}
