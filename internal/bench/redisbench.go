package bench

import (
	"fmt"

	"hpmp/internal/addr"
	"hpmp/internal/cpu"
	"hpmp/internal/miniredis"
	"hpmp/internal/simcfg"
	"hpmp/internal/stats"
)

func init() {
	register(ExperimentSpec{
		ID:       "fig12de",
		Title:    "Redis benchmark RPS (Rocket + BOOM)",
		Figure:   "Fig. 12-d/e",
		Counters: []string{"cpu.", "mmu.", "mem.", "kernel.", "monitor."},
		Cost:     CostHeavy,
		Run:      runFig12de,
	})
	register(ExperimentSpec{
		ID:       "fig3d",
		Title:    "Preview: Redis RPS, Table vs Segment (BOOM)",
		Figure:   "Fig. 3-d",
		Counters: []string{"cpu.", "mmu.", "mem.", "kernel.", "monitor."},
		Cost:     CostMedium,
		Run:      runFig3d,
	})
}

// redisRequests picks the per-command request count.
func redisRequests(cfg Config) int {
	if cfg.Quick {
		return simcfg.Or(cfg.Workload.RedisRequests, 8)
	}
	return simcfg.Or(cfg.Workload.RedisRequests, 30)
}

// collectRedis runs the full command sweep on one platform/label and
// returns rps[command][label].
func collectRedis(plat cpu.Platform, cfg Config, withHost bool) (map[string]map[string]float64, error) {
	out := map[string]map[string]float64{}
	for _, cmd := range miniredis.Commands {
		out[cmd] = map[string]float64{}
	}
	run := func(label string, sysFn func() (*System, error)) error {
		sys, err := sysFn()
		if err != nil {
			return err
		}
		e, err := sys.NewEnv("redis-server", 96*1024)
		if err != nil {
			return err
		}
		srv, err := miniredis.NewServer(e, 48*addr.MiB, 4096)
		if err != nil {
			return err
		}
		b := miniredis.NewBenchmark(srv, e)
		if ks := cfg.Workload.RedisKeyspace; ks > 0 {
			b.Keyspace = ks
		}
		if err := b.Prepare(); err != nil {
			return err
		}
		n := redisRequests(cfg)
		for _, cmd := range miniredis.Commands {
			rps, err := b.RunCommand(cmd, n)
			if err != nil {
				return fmt.Errorf("%s/%s: %w", label, cmd, err)
			}
			out[cmd][label] = rps
		}
		return nil
	}
	if withHost {
		if err := run("Host-PMP", func() (*System, error) { return NewHostSystem(plat, cfg) }); err != nil {
			return nil, err
		}
	}
	for _, mode := range AllModes {
		mode := mode
		if err := run("PL-"+ModeNames[mode], func() (*System, error) { return NewSystem(plat, mode, cfg) }); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func runFig12de(cfg Config) (*Result, error) {
	res := &Result{ID: "fig12de", Title: "Redis RPS normalized to Penglai-PMP (higher is better)"}
	for _, p := range []struct {
		name     string
		plat     cpu.Platform
		withHost bool
	}{{"Rocket", cpu.RocketPlatform(), false}, {"BOOM", cpu.BOOMPlatform(), true}} {
		data, err := collectRedis(p.plat, cfg, p.withHost)
		if err != nil {
			return nil, err
		}
		cols := []string{"PL-PMP", "PL-PMPT", "PL-HPMP"}
		if p.withHost {
			cols = append([]string{"Host-PMP"}, cols...)
		}
		t := stats.NewTable(fmt.Sprintf("Redis (%s), RPS %% of PL-PMP", p.name),
			append([]string{"Command"}, cols...)...)
		var pmptLoss, hpmpLoss []float64
		for _, cmd := range miniredis.Commands {
			base := data[cmd]["PL-PMP"]
			row := []string{cmd}
			for _, c := range cols {
				row = append(row, fmt.Sprintf("%.1f", stats.Ratio(data[cmd][c], base)))
			}
			t.AddRow(row...)
			pmptLoss = append(pmptLoss, 100-stats.Ratio(data[cmd]["PL-PMPT"], base))
			hpmpLoss = append(hpmpLoss, 100-stats.Ratio(data[cmd]["PL-HPMP"], base))
		}
		res.Tables = append(res.Tables, t)
		lo, hi := stats.MinMax(pmptLoss)
		res.Notes = append(res.Notes, fmt.Sprintf(
			"%s: PMPT throughput loss %.1f%%–%.1f%% (avg %.1f%%); HPMP avg %.1f%%.",
			p.name, lo, hi, stats.Mean(pmptLoss), stats.Mean(hpmpLoss)))
	}
	res.Notes = append(res.Notes,
		"Paper: PMPT loses 5.9–18% Rocket (avg 10.5%), 10.8–31.8% BOOM (avg 16.0%); HPMP avg 3.3%/4.5%.")
	return res, nil
}

func runFig3d(cfg Config) (*Result, error) {
	data, err := collectRedis(cpu.BOOMPlatform(), cfg, false)
	if err != nil {
		return nil, err
	}
	var ratios []float64
	worst := 100.0
	for _, cmd := range miniredis.Commands {
		r := stats.Ratio(data[cmd]["PL-PMPT"], data[cmd]["PL-PMP"])
		ratios = append(ratios, r)
		if r < worst {
			worst = r
		}
	}
	res := &Result{ID: "fig3d", Title: "Redis RPS normalized to Segment (BOOM, higher is better)"}
	t := stats.NewTable("Fig 3-d", "Case", "Segment", "Table")
	t.AddRow("Avg", "100.0", fmt.Sprintf("%.1f", stats.Mean(ratios)))
	t.AddRow("Worst", "100.0", fmt.Sprintf("%.1f", worst))
	res.Tables = append(res.Tables, t)
	return res, nil
}
