package bench

import (
	"fmt"

	"hpmp/internal/addr"
	"hpmp/internal/cpu"
	"hpmp/internal/kernel"
	"hpmp/internal/monitor"
	"hpmp/internal/stats"
)

func init() {
	register(ExperimentSpec{
		ID:       "table3",
		Title:    "Costs of OS operations (LMBench, BOOM)",
		Figure:   "Table 3",
		Counters: []string{"cpu.", "mmu.", "mem."},
		Cost:     CostMedium,
		Run:      runTable3,
	})
}

// lmbenchOp is one Table 3 row.
type lmbenchOp struct {
	name string
	// iters: repetitions per measurement (cheap ops need more for stable
	// means).
	iters int
	run   func(s *System, e *kernel.Env, peer *kernel.Process) error
}

func lmbenchOps(quick bool) []lmbenchOp {
	scale := 1
	if quick {
		scale = 1
	}
	return []lmbenchOp{
		{"null", 20 * scale, func(s *System, e *kernel.Env, _ *kernel.Process) error {
			return s.Kern.SyscallNull()
		}},
		{"read", 10 * scale, func(s *System, e *kernel.Env, _ *kernel.Process) error {
			return s.Kern.SyscallRead(e, e.P.Heap(), 1024)
		}},
		{"write", 10 * scale, func(s *System, e *kernel.Env, _ *kernel.Process) error {
			return s.Kern.SyscallWrite(e, e.P.Heap(), 512)
		}},
		{"stat", 10 * scale, func(s *System, e *kernel.Env, _ *kernel.Process) error {
			return s.Kern.SyscallStat(6)
		}},
		{"fstat", 10 * scale, func(s *System, e *kernel.Env, _ *kernel.Process) error {
			return s.Kern.SyscallFstat()
		}},
		{"open/close", 10 * scale, func(s *System, e *kernel.Env, _ *kernel.Process) error {
			return s.Kern.SyscallOpenClose(6)
		}},
		{"pipe", 6 * scale, func(s *System, e *kernel.Env, peer *kernel.Process) error {
			return s.Kern.SyscallPipe(e, peer, 64)
		}},
		{"fork+exit", 3, func(s *System, e *kernel.Env, _ *kernel.Process) error {
			return s.Kern.ForkExit(e)
		}},
		{"fork+exec", 3, func(s *System, e *kernel.Env, _ *kernel.Process) error {
			return s.Kern.ForkExec(e, kernel.Image{Name: "child", TextPages: 24, DataPages: 12})
		}},
	}
}

// measureLMBench runs the op suite on one system and returns mean cycles
// per op.
func measureLMBench(mode monitor.Mode, cfg Config) (map[string]float64, error) {
	// Steady-state host: physical memory is fragmented (long uptime), so
	// kernel-structure frames — and with them the permission-table entries
	// covering them — are spread across DRAM, as on the paper's testbed.
	mach := cpu.NewMachine(cpu.BOOMPlatform(), cfg.MemSize)
	mon, err := monitor.Boot(mach, monitor.DefaultConfig(mode))
	if err != nil {
		return nil, err
	}
	kcfg := kernel.DefaultConfig(cfg.MemSize)
	kcfg.ScatterFrames = true
	kern, err := kernel.New(mach, mon, kcfg)
	if err != nil {
		return nil, err
	}
	cfg.observe(mach)
	cfg.observeKernel(kern)
	cfg.observeMonitor(mon)
	sys := &System{Mach: mach, Mon: mon, Kern: kern, Mode: mode}
	e, err := sys.NewEnv("lmbench", 8192)
	if err != nil {
		return nil, err
	}
	// Pre-touch the working set like LMBench's warmup pass, and fault in
	// some heap pages for the copy buffers.
	if err := e.Touch(e.P.Heap(), 64*addr.PageSize); err != nil {
		return nil, err
	}
	peer, err := sys.Kern.Spawn(kernel.Image{Name: "peer", TextPages: 8, DataPages: 8})
	if err != nil {
		return nil, err
	}
	if err := sys.Kern.SwitchTo(e.P.PID); err != nil {
		return nil, err
	}

	out := map[string]float64{}
	for _, op := range lmbenchOps(cfg.Quick) {
		// Warmup.
		if err := op.run(sys, e, peer); err != nil {
			return nil, fmt.Errorf("%s warmup: %w", op.name, err)
		}
		start := sys.Mach.Core.Now
		for i := 0; i < op.iters; i++ {
			if err := op.run(sys, e, peer); err != nil {
				return nil, fmt.Errorf("%s: %w", op.name, err)
			}
		}
		out[op.name] = float64(sys.Mach.Core.Now-start) / float64(op.iters)
	}
	return out, nil
}

// CollectTable3 measures all three modes.
func CollectTable3(cfg Config) (map[monitor.Mode]map[string]float64, error) {
	out := map[monitor.Mode]map[string]float64{}
	for _, mode := range AllModes {
		m, err := measureLMBench(mode, cfg)
		if err != nil {
			return nil, err
		}
		out[mode] = m
	}
	return out, nil
}

func runTable3(cfg Config) (*Result, error) {
	data, err := CollectTable3(cfg)
	if err != nil {
		return nil, err
	}
	res := &Result{ID: "table3", Title: "Costs of OS operations (BOOM, cycles per op)"}
	t := stats.NewTable("Table 3", "Syscall", "PMP", "PMPT", "HPMP", "PMPT/HPMP")
	var ratios []float64
	for _, op := range lmbenchOps(cfg.Quick) {
		pmp := data[monitor.ModePMP][op.name]
		pmpt := data[monitor.ModePMPT][op.name]
		hpmp := data[monitor.ModeHPMP][op.name]
		ratio := stats.Ratio(pmpt, hpmp)
		ratios = append(ratios, ratio)
		t.AddRow(op.name,
			fmt.Sprintf("%.0f", pmp),
			fmt.Sprintf("%.0f", pmpt),
			fmt.Sprintf("%.0f", hpmp),
			fmt.Sprintf("%.2f%%", ratio))
	}
	t.AddRow("Avg", "", "", "", fmt.Sprintf("%.2f%%", stats.Mean(ratios)))
	res.Tables = append(res.Tables, t)
	res.Notes = append(res.Notes,
		"Paper reports ms on the FPGA; the simulator reports cycles per operation. "+
			"The comparison column (PMPT/HPMP) is the paper's, avg 128.43% in Table 3.")
	return res, nil
}
