package bench

import (
	"fmt"

	"hpmp/internal/addr"
	"hpmp/internal/cpu"
	"hpmp/internal/kernel"
	"hpmp/internal/mmu"
	"hpmp/internal/monitor"
	"hpmp/internal/perm"
	"hpmp/internal/stats"
)

func init() {
	register(ExperimentSpec{
		ID:       "fig15",
		Title:    "Memory fragmentation (VA × PA layouts)",
		Figure:   "Fig. 15",
		Counters: []string{"cpu.", "mmu.", "mem."},
		Cost:     CostMedium,
		Run:      runFig15,
	})
	register(ExperimentSpec{
		ID:       "fig16",
		Title:    "Caching for the permission table (PMPTW-Cache)",
		Figure:   "Fig. 16",
		Counters: []string{"cpu.", "mmu.", "mem.", "pmptw."},
		Cost:     CostMedium,
		Run:      runFig16,
	})
}

// fragProbe measures the total latency of touching nPages pages under a
// VA/PA layout combination, after pre-faulting them (so the measurement is
// pure translation + data, no page-fault handling).
//
//   - fragVA: consecutive accesses jump 8 GiB + 4 KiB apart (the paper's
//     Fragmented-VA recipe) instead of walking adjacent pages.
//   - fragPA: the kernel's frame allocator hands out scattered frames.
//   - pmptwCache: enables the PMPTW-Cache (Fig. 16).
func fragProbe(mode monitor.Mode, fragVA, fragPA, pmptwCache bool, nPages int, cfg Config) (uint64, error) {
	mach := cpu.NewMachine(cpu.RocketPlatform(), cfg.MemSize)
	mon, err := monitor.Boot(mach, monitor.DefaultConfig(mode))
	if err != nil {
		return 0, err
	}
	kcfg := kernel.DefaultConfig(cfg.MemSize)
	kcfg.ScatterFrames = fragPA
	k, err := kernel.New(mach, mon, kcfg)
	if err != nil {
		return 0, err
	}
	cfg.observe(mach)
	cfg.observeKernel(k)
	cfg.observeMonitor(mon)
	p, err := k.Spawn(kernel.Image{Name: "frag", TextPages: 8, DataPages: 8})
	if err != nil {
		return 0, err
	}
	e, err := k.NewEnv(p)
	if err != nil {
		return 0, err
	}
	mach.PMPTWCache.Enabled = pmptwCache

	// Build the VA list.
	vas := make([]addr.VA, nPages)
	if fragVA {
		// 8 GiB + 4 KiB stride (paper §8.8): every access misses TLB and
		// upper-level PWC entries.
		stride := addr.VA(8*addr.GiB + 4*addr.KiB)
		base := addr.VA(0x10_0000_0000)
		for i := range vas {
			va := base + addr.VA(i)*stride
			// Wrap inside the canonical Sv39 half.
			va &= (1 << 38) - 1
			vas[i] = va.PageBase()
		}
	} else {
		base := p.MMap(nPages, perm.RW)
		for i := range vas {
			vas[i] = base + addr.VA(i*addr.PageSize)
		}
	}
	if fragVA {
		// Cover the scattered VAs with one big anonymous VMA each.
		for _, va := range vas {
			if _, ok := pageVMA(p, va); !ok {
				p.AddVMAAt(va, 1, perm.RW)
			}
		}
	}
	// Pre-fault everything.
	for _, va := range vas {
		if err := e.Touch(va, addr.PageSize); err != nil {
			return 0, err
		}
	}
	// Cold translation state, warm-ish caches: flush TLB+PWC only.
	mach.MMU.FlushTLB()
	if mach.PMPTWCache != nil {
		mach.PMPTWCache.Invalidate()
	}

	// The measurement loop is a pure serial reference stream — exactly the
	// shape AccessBatch batches: each access issues at the cycle the
	// previous one retired.
	start := mach.Core.Now
	reqs := make([]mmu.AccessReq, len(vas))
	for i, va := range vas {
		reqs[i] = mmu.AccessReq{VA: va, Kind: perm.Read, Priv: perm.U}
	}
	out := make([]mmu.Result, len(vas))
	end, err := mach.MMU.AccessBatch(reqs, out, mach.Core.Now)
	if err != nil {
		return 0, err
	}
	for i := range out {
		if out[i].Faulted() {
			return 0, fmt.Errorf("fragProbe: fault at %v: %+v", vas[i], out[i])
		}
	}
	mach.Core.Now = end
	return mach.Core.Now - start, nil
}

func pageVMA(p *kernel.Process, va addr.VA) (kernel.VMA, bool) {
	return p.VMAFor(va)
}

func fragPages(cfg Config) int {
	if cfg.Quick {
		return 16
	}
	return 32
}

func runFig15(cfg Config) (*Result, error) {
	res := &Result{ID: "fig15", Title: "Fragmentation: total latency of touching pages (cycles, Rocket)"}
	n := fragPages(cfg)
	for _, pa := range []struct {
		frag  bool
		title string
	}{{false, "Fig 15-a: contiguous physical pages"}, {true, "Fig 15-b: fragmented physical pages"}} {
		t := stats.NewTable(pa.title, "VA layout", "PMP", "PMPT", "HPMP")
		for _, va := range []struct {
			frag bool
			name string
		}{{false, "Contiguous-VA"}, {true, "Fragmented-VA"}} {
			row := []string{va.name}
			for _, mode := range AllModes {
				lat, err := fragProbe(mode, va.frag, pa.frag, false, n, cfg)
				if err != nil {
					return nil, err
				}
				row = append(row, fmt.Sprintf("%d", lat))
			}
			t.AddRow(row...)
		}
		res.Tables = append(res.Tables, t)
	}
	res.Notes = append(res.Notes,
		fmt.Sprintf("%d pages touched after a TLB/PWC flush; caches warm (paper §8.8 methodology).", n),
		"Paper: fragmentation hurts everywhere; HPMP < PMPT in all four quadrants.")
	return res, nil
}

func runFig16(cfg Config) (*Result, error) {
	res := &Result{ID: "fig16", Title: "PMPTW-Cache impact (cycles, Rocket; fragmented physical pages)"}
	n := fragPages(cfg)
	t := stats.NewTable("Fig 16", "VA layout",
		"PMPT", "PMPT-Cache", "HPMP", "HPMP-Cache", "PMP")
	for _, va := range []struct {
		frag bool
		name string
	}{{false, "Contiguous-VA"}, {true, "Fragmented-VA"}} {
		type cell struct {
			mode  monitor.Mode
			cache bool
		}
		cells := []cell{
			{monitor.ModePMPT, false},
			{monitor.ModePMPT, true},
			{monitor.ModeHPMP, false},
			{monitor.ModeHPMP, true},
			{monitor.ModePMP, false},
		}
		row := []string{va.name}
		for _, c := range cells {
			lat, err := fragProbe(c.mode, va.frag, true, c.cache, n, cfg)
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%d", lat))
		}
		t.AddRow(row...)
	}
	res.Tables = append(res.Tables, t)
	res.Notes = append(res.Notes,
		"Paper: caching helps PMPT most on Fragmented-VA; HPMP+Cache is best everywhere "+
			"because HPMP removes PT-page checks by construction while the cache absorbs data-page checks.")
	return res, nil
}
