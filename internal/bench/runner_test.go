package bench

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"hpmp/internal/cpu"
	"hpmp/internal/stats"
)

// fakeExp builds a trivial experiment that records nothing but produces a
// one-row table, optionally failing or panicking.
func fakeExp(id string, run func(cfg Config) (*Result, error)) Experiment {
	return Experiment{ID: id, Title: "fake " + id, Run: run}
}

func okRun(id string) func(cfg Config) (*Result, error) {
	return func(cfg Config) (*Result, error) {
		res := &Result{ID: id, Title: "ok"}
		t := stats.NewTable("t", "k", "v")
		t.AddRow(id, "1")
		res.Tables = append(res.Tables, t)
		return res, nil
	}
}

func TestRunAllIsolatesFailures(t *testing.T) {
	exps := []Experiment{
		fakeExp("a1", okRun("a1")),
		fakeExp("a2", func(cfg Config) (*Result, error) { return nil, errors.New("boom") }),
		fakeExp("a3", func(cfg Config) (*Result, error) { panic("kaboom") }),
		fakeExp("a4", func(cfg Config) (*Result, error) { return nil, nil }), // nil result, nil error
		fakeExp("a5", okRun("a5")),
	}
	var emitted []string
	outcomes := RunAll(context.Background(), DefaultConfig(), exps, RunOptions{Parallel: 4},
		func(o Outcome) { emitted = append(emitted, o.Experiment.ID) })

	if len(outcomes) != len(exps) {
		t.Fatalf("got %d outcomes, want %d", len(outcomes), len(exps))
	}
	wantStatus := []Status{StatusOK, StatusError, StatusPanic, StatusError, StatusOK}
	for i, o := range outcomes {
		if o.Status != wantStatus[i] {
			t.Errorf("%s: status %s, want %s (err=%v)", o.Experiment.ID, o.Status, wantStatus[i], o.Err)
		}
		if o.OK() != (o.Status == StatusOK) {
			t.Errorf("%s: OK() inconsistent with status", o.Experiment.ID)
		}
		if o.OK() && o.Result == nil {
			t.Errorf("%s: ok outcome without result", o.Experiment.ID)
		}
	}
	if !strings.Contains(outcomes[2].Err.Error(), "kaboom") {
		t.Errorf("panic message lost: %v", outcomes[2].Err)
	}
	want := []string{"a1", "a2", "a3", "a4", "a5"}
	if fmt.Sprint(emitted) != fmt.Sprint(want) {
		t.Errorf("emit order %v, want input order %v", emitted, want)
	}
}

// TestRunAllDeterministicAcrossParallelism runs the same experiment set
// sequentially and with a large worker pool; the rendered results must be
// byte-identical.
func TestRunAllDeterministicAcrossParallelism(t *testing.T) {
	var exps []Experiment
	for i := 0; i < 12; i++ {
		id := fmt.Sprintf("d%d", i)
		exps = append(exps, fakeExp(id, okRun(id)))
	}
	render := func(parallel int) string {
		var b strings.Builder
		RunAll(context.Background(), DefaultConfig(), exps, RunOptions{Parallel: parallel},
			func(o Outcome) {
				if o.OK() {
					b.WriteString(o.Result.Render())
				}
			})
		return b.String()
	}
	seq := render(1)
	par := render(8)
	if seq != par {
		t.Errorf("output differs between -parallel 1 and -parallel 8:\nseq:\n%s\npar:\n%s", seq, par)
	}
	if !strings.Contains(seq, "d11") {
		t.Errorf("output missing experiments:\n%s", seq)
	}
}

func TestRunAllTimeout(t *testing.T) {
	exps := []Experiment{
		fakeExp("slow", func(cfg Config) (*Result, error) {
			time.Sleep(5 * time.Second)
			return okRun("slow")(cfg)
		}),
		fakeExp("fast", okRun("fast")),
	}
	start := time.Now()
	outcomes := RunAll(context.Background(), DefaultConfig(), exps,
		RunOptions{Parallel: 2, Timeout: 50 * time.Millisecond}, nil)
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("timeout did not bound the run (took %v)", elapsed)
	}
	if outcomes[0].Status != StatusTimeout {
		t.Errorf("slow: status %s, want %s", outcomes[0].Status, StatusTimeout)
	}
	if outcomes[1].Status != StatusOK {
		t.Errorf("fast: status %s, want %s (err=%v)", outcomes[1].Status, StatusOK, outcomes[1].Err)
	}
}

func TestRunAllCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	exps := []Experiment{fakeExp("c1", okRun("c1")), fakeExp("c2", okRun("c2"))}
	outcomes := RunAll(ctx, DefaultConfig(), exps, RunOptions{Parallel: 2}, nil)
	for _, o := range outcomes {
		if o.Status != StatusCanceled {
			t.Errorf("%s: status %s, want %s", o.Experiment.ID, o.Status, StatusCanceled)
		}
	}
}

// TestRunAllObservesCounters checks the runner's observability snapshot:
// an experiment that boots a real System gets its machine counters merged
// into Result.Counters, and wall time is recorded.
func TestRunAllObservesCounters(t *testing.T) {
	if testing.Short() {
		t.Skip("boots a simulated system")
	}
	exp := fakeExp("obs", func(cfg Config) (*Result, error) {
		sys, err := NewSystem(cpu.RocketPlatform(), AllModes[0], cfg)
		if err != nil {
			return nil, err
		}
		e, err := sys.NewEnv("obs", 1024)
		if err != nil {
			return nil, err
		}
		if err := e.Touch(e.P.Heap(), 4096); err != nil {
			return nil, err
		}
		res := &Result{ID: "obs", Title: "obs"}
		tb := stats.NewTable("t", "k")
		tb.AddRow("x")
		res.Tables = append(res.Tables, tb)
		return res, nil
	})
	outcomes := RunAll(context.Background(), DefaultConfig(), []Experiment{exp}, RunOptions{Parallel: 1}, nil)
	o := outcomes[0]
	if !o.OK() {
		t.Fatalf("experiment failed: %v", o.Err)
	}
	if o.Result.Wall <= 0 || o.Wall <= 0 {
		t.Errorf("wall time not recorded: result=%v outcome=%v", o.Result.Wall, o.Wall)
	}
	if o.Result.Counters.Get("cpu.instructions") == 0 || o.Result.Counters.Get("kernel.spawn") == 0 {
		t.Errorf("counters not snapshotted: %s", o.Result.Counters.String())
	}
	csv := CountersCSV(o.Result)
	if !strings.Contains(csv, "cpu.instructions") {
		t.Errorf("CountersCSV missing counters:\n%s", csv)
	}
}

func TestSummaryNamesFailures(t *testing.T) {
	exps := []Experiment{
		fakeExp("s1", okRun("s1")),
		fakeExp("s2", func(cfg Config) (*Result, error) { return nil, errors.New("injected") }),
	}
	outcomes := RunAll(context.Background(), DefaultConfig(), exps, RunOptions{Parallel: 1}, nil)
	out := Summary(outcomes).Render()
	for _, want := range []string{"s1", "s2", "ok", "error", "injected"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}

func TestNaturalLess(t *testing.T) {
	cases := []struct {
		a, b string
		want bool
	}{
		{"fig3a", "fig10", true},
		{"fig10", "fig3a", false},
		{"fig3a", "fig3b", true},
		{"table3", "table4", true},
		{"fig9", "fig10", true},
		{"fig10", "fig10", false},
		{"ext-deep", "fig3a", true},
		{"fig12ab", "fig12c", true},
		{"fig12c", "fig12de", true},
		{"a02", "a2", false}, // same value: fewer leading zeros first
		{"a2", "a02", true},
	}
	for _, c := range cases {
		if got := naturalLess(c.a, c.b); got != c.want {
			t.Errorf("naturalLess(%q, %q) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

// TestAllNaturalOrder pins the user-visible ordering bug: previews fig3a–d
// must come before fig10, and table3 directly before table4.
func TestAllNaturalOrder(t *testing.T) {
	ids := make([]string, 0)
	for _, e := range All() {
		ids = append(ids, e.ID)
	}
	pos := map[string]int{}
	for i, id := range ids {
		pos[id] = i
	}
	orderings := [][2]string{
		{"fig3a", "fig10"}, {"fig3d", "fig10"}, {"fig9", "fig10"},
		{"fig10", "fig11a"}, {"fig12c", "fig12de"}, {"table3", "table4"},
	}
	for _, o := range orderings {
		pa, oka := pos[o[0]]
		pb, okb := pos[o[1]]
		if !oka || !okb {
			continue // not every pair is registered (e.g. fig9)
		}
		if pa >= pb {
			t.Errorf("All(): %s (pos %d) must precede %s (pos %d); full order: %v",
				o[0], pa, o[1], pb, ids)
		}
	}
}

func TestRegisterRejectsDuplicates(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("duplicate id", func() {
		Register(Experiment{ID: "fig10", Title: "dup", Run: okRun("fig10")})
	})
	mustPanic("malformed id", func() {
		Register(Experiment{ID: "Fig 10!", Title: "bad", Run: okRun("bad")})
	})
	mustPanic("empty id", func() {
		Register(Experiment{ID: "", Title: "bad", Run: okRun("bad")})
	})
	mustPanic("nil run", func() {
		Register(Experiment{ID: "zz-nilrun", Title: "bad"})
	})
	// Failed registrations must not have mutated the registry.
	if _, ok := ByID("zz-nilrun"); ok {
		t.Error("failed registration leaked into the registry")
	}
}

func TestConfigValidate(t *testing.T) {
	cfg := DefaultConfig()
	if err := cfg.Validate(); err != nil {
		t.Errorf("default config must validate: %v", err)
	}
	cfg.MemSize = 0
	if err := cfg.Validate(); err == nil {
		t.Error("MemSize 0 must be rejected")
	}
	cfg.MemSize = MinMemSize - 1
	if err := cfg.Validate(); err == nil {
		t.Error("sub-minimum MemSize must be rejected")
	}
	cfg.MemSize = MinMemSize
	if err := cfg.Validate(); err != nil {
		t.Errorf("MinMemSize must validate: %v", err)
	}
}
