package bench

import (
	"fmt"

	"hpmp/internal/addr"
	"hpmp/internal/cpu"
	"hpmp/internal/kernel"
	"hpmp/internal/mmu"
	"hpmp/internal/monitor"
	"hpmp/internal/perm"
	"hpmp/internal/phys"
	"hpmp/internal/pmpt"
	"hpmp/internal/simcfg"
	"hpmp/internal/stats"
	"hpmp/internal/virt"
	"hpmp/internal/workloads"
)

// Scenario zoo: situations the paper's evaluation never ran but its design
// arguments predict behaviour for. Each scenario is a normal registered
// experiment — it lists, runs, golden-pins, and exports metrics like the
// figure reproductions — and doubles as a trace donor for the replay engine
// (internal/replay): all four are light-tier, so the record-then-replay
// equivalence gate covers their traces too.

func init() {
	register(ExperimentSpec{
		ID:       "scen-shootdown",
		Title:    "TLB-shootdown storm: remap churn vs working-set re-touch cost",
		Figure:   "scenario (§8 extrapolation)",
		Counters: []string{"cpu.", "mmu.", "mem.", "kernel."},
		Cost:     CostLight,
		Run:      runScenShootdown,
	})
	register(ExperimentSpec{
		ID:       "scen-virtdepth",
		Title:    "Nested virtualization with deeper permission tables (depth sweep)",
		Figure:   "scenario (§4.3 Mode field × §8.6 virtualization)",
		Counters: []string{"cpu.", "mmu.", "mem."},
		Cost:     CostLight,
		Run:      runScenVirtDepth,
	})
	register(ExperimentSpec{
		ID:       "scen-aging",
		Title:    "Memory-fragmentation aging: translation cost vs allocator churn",
		Figure:   "scenario (§8.8 extrapolation)",
		Counters: []string{"cpu.", "mmu.", "mem.", "kernel."},
		Cost:     CostLight,
		Run:      runScenAging,
	})
	register(ExperimentSpec{
		ID:       "scen-coldflood",
		Title:    "Serverless cold-start flood: back-to-back fresh invocations",
		Figure:   "scenario (§8.7 extrapolation)",
		Counters: []string{"cpu.", "mmu.", "mem.", "kernel."},
		Cost:     CostLight,
		Run:      runScenColdFlood,
	})
}

// --- scen-shootdown ---------------------------------------------------

// shootdownParams sizes the storm: harts become round-robin processes
// (the simulator is single-hart, so the cross-hart cost that survives is
// the one the paper cares about — every shootdown round empties the PWC
// and forces re-walks whose price depends on the isolation mode).
func shootdownParams(cfg Config) (harts, wset, rounds int) {
	if cfg.Quick {
		return 2, 8, 4
	}
	return 4, 16, 8
}

// runScenShootdown: H worker processes each re-touch a private working set
// every round; between rounds one process unmaps and remaps a page (munmap
// → per-page sfence.vma, the IPI-broadcast shootdown's local cost). The
// sfence conservatively drops walker-cache state, so every round's
// re-touches pay fresh walks: PMPT re-pays the extra-dimensional table
// refs, HPMP only the segment check.
func runScenShootdown(cfg Config) (*Result, error) {
	harts, wset, rounds := shootdownParams(cfg)
	res := &Result{ID: "scen-shootdown",
		Title: fmt.Sprintf("TLB-shootdown storm (%d harts × %d pages × %d rounds, Rocket)", harts, wset, rounds)}
	t := stats.NewTable("scen-shootdown", "Mode", "Total cycles", "Cycles/round", "vs PMP")

	var base float64
	for _, mode := range AllModes {
		sys, err := NewSystem(cpu.RocketPlatform(), mode, cfg)
		if err != nil {
			return nil, err
		}
		type worker struct {
			env  *kernel.Env
			vas  []addr.VA
			spin addr.VA // the page the storm unmaps/remaps
		}
		workers := make([]worker, harts)
		for i := range workers {
			e, err := sys.NewEnv(fmt.Sprintf("hart-%d", i), 4096)
			if err != nil {
				return nil, err
			}
			bufBase := e.P.MMap(wset, perm.RW)
			w := worker{env: e, spin: e.P.MMap(1, perm.RW)}
			for j := 0; j < wset; j++ {
				w.vas = append(w.vas, bufBase+addr.VA(j*addr.PageSize))
			}
			// Prefault working set and spin page.
			if err := sys.Kern.SwitchTo(e.P.PID); err != nil {
				return nil, err
			}
			if err := e.Touch(bufBase, uint64(wset*addr.PageSize)); err != nil {
				return nil, err
			}
			if err := e.Touch(w.spin, addr.PageSize); err != nil {
				return nil, err
			}
			workers[i] = w
		}

		start := sys.Mach.Core.Now
		for r := 0; r < rounds; r++ {
			// The storm: hart r%H drops its spin page and maps a fresh one —
			// munmap frees the frame, clears the PTE, and issues the
			// per-page flush every other hart would receive as an IPI.
			v := &workers[r%harts]
			if err := sys.Kern.SwitchTo(v.env.P.PID); err != nil {
				return nil, err
			}
			if err := sys.Kern.MUnmap(v.env.P, v.spin); err != nil {
				return nil, err
			}
			v.spin = v.env.P.MMap(1, perm.RW)
			if err := v.env.Touch(v.spin, addr.PageSize); err != nil {
				return nil, err
			}
			// Every hart re-touches its working set through the batched
			// access path — the post-shootdown re-walk storm.
			for i := range workers {
				w := &workers[i]
				if err := sys.Kern.SwitchTo(w.env.P.PID); err != nil {
					return nil, err
				}
				reqs := make([]mmu.AccessReq, len(w.vas))
				out := make([]mmu.Result, len(w.vas))
				for j, va := range w.vas {
					reqs[j] = mmu.AccessReq{VA: va, Kind: perm.Read, Priv: perm.U}
				}
				end, err := sys.Mach.MMU.AccessBatch(reqs, out, sys.Mach.Core.Now)
				if err != nil {
					return nil, err
				}
				for j := range out {
					if out[j].Faulted() {
						return nil, fmt.Errorf("scen-shootdown: fault at %v: %+v", w.vas[j], out[j])
					}
				}
				sys.Mach.Core.Now = end
			}
		}
		total := sys.Mach.Core.Now - start
		if mode == monitor.ModePMP {
			base = float64(total)
		}
		t.AddRow(ModeNames[mode],
			fmt.Sprintf("%d", total),
			fmt.Sprintf("%d", total/uint64(rounds)),
			fmt.Sprintf("%.1f", stats.Ratio(float64(total), base)))
	}
	res.Tables = append(res.Tables, t)
	res.Notes = append(res.Notes,
		"Each munmap's sfence.vma drops walker-cache state, so every round re-pays full walks: "+
			"the table modes re-pay the extra-dimensional refs, the segment mode only the match.")
	return res, nil
}

// --- scen-virtdepth ---------------------------------------------------

// virtDepthRig is buildVirtRig generalized over permission-table depth:
// depth 2 uses the standard 2-level table, depths 3 and 4 the reserved
// Mode-field encodings (ext-deep), filled page-granular over the regions
// the guest access path actually touches so every uncached check walks the
// full depth.
func virtDepthRig(mode monitor.Mode, depth int, cfg Config) (*virt.Hypervisor, addr.VA, error) {
	memSize := cfg.MemSize
	mach := cpu.NewMachine(cpu.RocketPlatform(), memSize)
	cfg.observe(mach)
	nptRegion := addr.Range{Base: 0x0100_0000, Size: 4 * addr.MiB}
	tblRegion := addr.Range{Base: 0x0400_0000, Size: 16 * addr.MiB}
	dataRegion := addr.Range{Base: 0x0800_0000, Size: 64 * addr.MiB}

	nptAlloc := phys.NewFrameAllocator(nptRegion, false)
	dataAlloc := phys.NewFrameAllocator(dataRegion, false)
	tblAlloc := phys.NewFrameAllocator(tblRegion, false)

	npt, err := virt.NewNestedTable(mach.Mem, nptAlloc)
	if err != nil {
		return nil, 0, err
	}
	guest, err := virt.NewGuestTable(mach.Mem, npt, 0x4000_0000, 256, dataAlloc)
	if err != nil {
		return nil, 0, err
	}

	checker := mach.Checker
	all := addr.Range{Base: 0, Size: memSize}
	entry := 0
	if mode == monitor.ModeHPMP {
		if err := checker.SetSegment(entry, nptRegion, perm.RW, false); err != nil {
			return nil, 0, err
		}
		entry++
	}
	switch depth {
	case 2:
		ptab, err := pmpt.NewTable(mach.Mem, tblAlloc, all)
		if err != nil {
			return nil, 0, err
		}
		if err := ptab.SetRangePermPaged(all, perm.RWX); err != nil {
			return nil, 0, err
		}
		if err := checker.SetTable(entry, all, ptab.RootBase()); err != nil {
			return nil, 0, err
		}
	case 3, 4:
		tblMode := pmpt.Mode3Level
		if depth == 4 {
			tblMode = pmpt.Mode4Level
		}
		ptab, err := pmpt.NewDeepTable(mach.Mem, tblAlloc, all, tblMode)
		if err != nil {
			return nil, 0, err
		}
		// Page-granular fill over the touched regions only: huge root
		// entries would short-circuit every check at one fetch and make the
		// depth sweep vacuous.
		for _, region := range []addr.Range{nptRegion, dataRegion} {
			for pa := region.Base; pa < region.Base+addr.PA(region.Size); pa += addr.PageSize {
				if err := ptab.SetPagePerm(pa, perm.RWX); err != nil {
					return nil, 0, err
				}
			}
		}
		if err := checker.SetTableMode(entry, all, ptab.RootBase(), tblMode); err != nil {
			return nil, 0, err
		}
	default:
		return nil, 0, fmt.Errorf("scen-virtdepth: unsupported depth %d", depth)
	}

	hyp := virt.NewHypervisor(mach, checker, npt, guest)
	gva := addr.VA(0x1000_0000)
	for i := 0; i < 2; i++ {
		gpa := addr.GPA(0x8000_0000 + i*addr.PageSize)
		pa, err := dataAlloc.Alloc()
		if err != nil {
			return nil, 0, err
		}
		if err := npt.Map(gpa, pa, perm.RW); err != nil {
			return nil, 0, err
		}
		if err := guest.Map(gva+addr.VA(i*addr.PageSize), gpa, perm.RW); err != nil {
			return nil, 0, err
		}
	}
	return hyp, gva, nil
}

// virtDepthProbe measures the cold and post-hfence.gvma hlv.d latency.
func virtDepthProbe(mode monitor.Mode, depth int, cfg Config) (cold, hfence uint64, err error) {
	hyp, gva, err := virtDepthRig(mode, depth, cfg)
	if err != nil {
		return 0, 0, err
	}
	access := func() (virt.Result, error) {
		return hyp.AccessGuest(gva, perm.Read, hyp.Mach.Core.Now)
	}
	hyp.Mach.ColdReset()
	r, err := access()
	if err != nil {
		return 0, 0, err
	}
	if r.PageFault || r.AccessFault {
		return 0, 0, fmt.Errorf("scen-virtdepth %v depth %d: fault %+v", mode, depth, r)
	}
	cold = r.Latency
	hyp.HFenceGVMA()
	r, err = access()
	if err != nil {
		return 0, 0, err
	}
	return cold, r.Latency, nil
}

// runScenVirtDepth sweeps the permission-table depth under nested
// virtualization: the two-dimensional walk multiplies the page-table refs,
// and every extra permission-table level multiplies them again — the
// regime the CVA6 nested-virtualization work motivates. HPMP's segment
// entry takes the NPT pages out of the table path at every depth.
func runScenVirtDepth(cfg Config) (*Result, error) {
	res := &Result{ID: "scen-virtdepth", Title: "hlv.d latency vs permission-table depth (cycles, Rocket)"}
	t := stats.NewTable("scen-virtdepth", "Depth",
		"PMPT cold", "PMPT hfence.g", "HPMP cold", "HPMP hfence.g")
	for _, depth := range []int{2, 3, 4} {
		pc, pf, err := virtDepthProbe(monitor.ModePMPT, depth, cfg)
		if err != nil {
			return nil, err
		}
		hc, hf, err := virtDepthProbe(monitor.ModeHPMP, depth, cfg)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%d-level", depth),
			fmt.Sprintf("%d", pc), fmt.Sprintf("%d", pf),
			fmt.Sprintf("%d", hc), fmt.Sprintf("%d", hf))
	}
	res.Tables = append(res.Tables, t)
	res.Notes = append(res.Notes,
		"Sv39 guest over Sv39x4 NPT; permission-table depth via the §4.3 reserved Mode values.",
		"Deeper tables stretch PMPT's per-PTE-fetch checks; HPMP's NPT segment flattens the growth.")
	return res, nil
}

// --- scen-aging -------------------------------------------------------

// agingParams sizes the churn: each epoch shuffles churnPages frames onto
// the free list, and the probe's working set draws from them. Both churn
// sizes are coprime to ageSystem's permutation stride.
func agingParams(cfg Config) (churnPages, wset int) {
	if cfg.Quick {
		return 24, 12
	}
	return 48, 24
}

// agingProbe times a fresh process touching wset pages through the batched
// path with cold translation state — fragProbe's measurement loop, aimed
// at whatever frames the aged allocator hands out.
func agingProbe(sys *System, name string, wset int) (uint64, error) {
	e, err := sys.NewEnv(name, 4096)
	if err != nil {
		return 0, err
	}
	if err := sys.Kern.SwitchTo(e.P.PID); err != nil {
		return 0, err
	}
	base := e.P.MMap(wset, perm.RW)
	if err := e.Touch(base, uint64(wset*addr.PageSize)); err != nil {
		return 0, err
	}
	// Full cold reset (caches, TLBs, PWC, PMPTW cache, DRAM row state): the
	// only thing that differs between epochs is where the aged allocator
	// put the frames.
	sys.Mach.ColdReset()
	reqs := make([]mmu.AccessReq, wset)
	out := make([]mmu.Result, wset)
	for i := 0; i < wset; i++ {
		reqs[i] = mmu.AccessReq{VA: base + addr.VA(i*addr.PageSize), Kind: perm.Read, Priv: perm.U}
	}
	start := sys.Mach.Core.Now
	end, err := sys.Mach.MMU.AccessBatch(reqs, out, start)
	if err != nil {
		return 0, err
	}
	for i := range out {
		if out[i].Faulted() {
			return 0, fmt.Errorf("agingProbe: fault: %+v", out[i])
		}
	}
	sys.Mach.Core.Now = end
	return end - start, nil
}

// ageSystem runs one churn epoch: a resident process materializes a run of
// single-page mappings (contiguous frames, in order), then munmaps them in
// a stride-permuted order. The frees land on the allocator's LIFO free
// list shuffled, so the next demand-faulting process draws frames scattered
// across the region instead of an ascending run — allocator aging.
func ageSystem(sys *System, epoch, churnPages int) error {
	e, err := sys.NewEnv(fmt.Sprintf("churn-%d", epoch), 4096)
	if err != nil {
		return err
	}
	if err := sys.Kern.SwitchTo(e.P.PID); err != nil {
		return err
	}
	vmas := make([]addr.VA, churnPages)
	for i := range vmas {
		vmas[i] = e.P.MMap(1, perm.RW)
		if err := e.Touch(vmas[i], addr.PageSize); err != nil {
			return err
		}
	}
	// Stride 7 is coprime to the churn sizes, so the permutation visits
	// every mapping exactly once.
	for i := range vmas {
		j := (i * 7) % len(vmas)
		if err := sys.Kern.MUnmap(e.P, vmas[j]); err != nil {
			return err
		}
	}
	// The churn process stays resident (a long-lived daemon): exiting it
	// would append its image frames to the free list in a tidy run and
	// partially undo the shuffle.
	return nil
}

// runScenAging measures how allocator aging inflates translation cost: a
// young system hands a fresh process contiguous frames; after churn epochs
// the same probe lands on scattered frames, spreading PTEs and permission
// -table entries across more cache lines — the fragmented-PA regime of
// Fig. 15 reached by lifecycle instead of by flag.
func runScenAging(cfg Config) (*Result, error) {
	churn, wset := agingParams(cfg)
	res := &Result{ID: "scen-aging",
		Title: fmt.Sprintf("Allocator aging: %d-page probe after churn epochs (cycles, Rocket)", wset)}
	t := stats.NewTable("scen-aging", "Age", "PMP", "PMPT", "HPMP")
	epochs := []string{"fresh", "aged-1", "aged-2"}
	lat := map[string]map[monitor.Mode]uint64{}
	for _, mode := range AllModes {
		sys, err := NewSystem(cpu.RocketPlatform(), mode, cfg)
		if err != nil {
			return nil, err
		}
		for ep, name := range epochs {
			if ep > 0 {
				if err := ageSystem(sys, ep, churn); err != nil {
					return nil, err
				}
			}
			cycles, err := agingProbe(sys, fmt.Sprintf("probe-%d", ep), wset)
			if err != nil {
				return nil, err
			}
			if lat[name] == nil {
				lat[name] = map[monitor.Mode]uint64{}
			}
			lat[name][mode] = cycles
		}
	}
	for _, name := range epochs {
		t.AddRow(name,
			fmt.Sprintf("%d", lat[name][monitor.ModePMP]),
			fmt.Sprintf("%d", lat[name][monitor.ModePMPT]),
			fmt.Sprintf("%d", lat[name][monitor.ModeHPMP]))
	}
	res.Tables = append(res.Tables, t)
	res.Notes = append(res.Notes,
		fmt.Sprintf("Each epoch shuffles %d frames onto the free list via stride-permuted munmaps; probes touch %d pages after a cold reset.", churn, wset),
		"Aging scatters frames like Fig. 15's Fragmented-PA, but earned through allocator churn; the mode ordering (PMP < HPMP < PMPT) holds at every age.")
	return res, nil
}

// --- scen-coldflood ---------------------------------------------------

func coldFloodParams(cfg Config) (flood int, w workloads.Workload) {
	if cfg.Quick {
		return simcfg.Or(cfg.Workload.ColdStarts, 4), &workloads.Matmul{N: 8}
	}
	return simcfg.Or(cfg.Workload.ColdStarts, 12), &workloads.Matmul{N: 16}
}

// runScenColdFlood hammers one system with back-to-back cold invocations —
// the flood a serverless platform sees when a popular function scales from
// zero. Every invocation is a fresh process: cold TLB, demand paging, full
// spawn/exit kernel path; isolation-mode overhead lands on every single
// request instead of amortizing across a warm pool.
func runScenColdFlood(cfg Config) (*Result, error) {
	flood, w := coldFloodParams(cfg)
	res := &Result{ID: "scen-coldflood",
		Title: fmt.Sprintf("Cold-start flood: %d back-to-back %s invocations (Rocket)", flood, w.Name())}
	t := stats.NewTable("scen-coldflood", "System", "Total Mcyc", "Mean cyc/invocation", "vs Host-PMP")

	systems := []struct {
		label string
		boot  func() (*System, error)
	}{
		{"Host-PMP", func() (*System, error) { return NewHostSystem(cpu.RocketPlatform(), cfg) }},
		{"PL-PMP", func() (*System, error) { return NewSystem(cpu.RocketPlatform(), monitor.ModePMP, cfg) }},
		{"PL-PMPT", func() (*System, error) { return NewSystem(cpu.RocketPlatform(), monitor.ModePMPT, cfg) }},
		{"PL-HPMP", func() (*System, error) { return NewSystem(cpu.RocketPlatform(), monitor.ModeHPMP, cfg) }},
	}
	var base float64
	for _, s := range systems {
		sys, err := s.boot()
		if err != nil {
			return nil, err
		}
		if _, err := sys.NewEnv("gateway", 1024); err != nil {
			return nil, err
		}
		var total uint64
		for i := 0; i < flood; i++ {
			cycles, err := runServerless(sys, w)
			if err != nil {
				return nil, fmt.Errorf("%s invocation %d: %w", s.label, i, err)
			}
			total += cycles
		}
		mean := total / uint64(flood)
		if s.label == "Host-PMP" {
			base = float64(mean)
		}
		t.AddRow(s.label,
			fmt.Sprintf("%.2f", float64(total)/1e6),
			fmt.Sprintf("%d", mean),
			fmt.Sprintf("%.1f", stats.Ratio(float64(mean), base)))
	}
	res.Tables = append(res.Tables, t)
	res.Notes = append(res.Notes,
		"No warm pool: every request pays spawn, demand paging, and cold-cache walks under its isolation mode.")
	return res, nil
}
