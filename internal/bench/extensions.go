package bench

import (
	"fmt"

	"hpmp/internal/addr"
	"hpmp/internal/cpu"
	"hpmp/internal/mmu"
	"hpmp/internal/monitor"
	"hpmp/internal/perm"
	"hpmp/internal/phys"
	"hpmp/internal/pmpt"
	"hpmp/internal/pt"
	"hpmp/internal/stats"
)

// Extension experiments: not figures of the paper, but claims its text
// makes (intro: deeper page tables make the extra dimension worse; §9: app
// hints can also free the data-page checks). Both are ablations DESIGN.md
// calls out.

func init() {
	register(ExperimentSpec{
		ID:       "ext-svx",
		Title:    "Deeper page tables: Sv39/Sv48/Sv57 reference counts",
		Figure:   "extension (§2.1 walk depth)",
		Counters: []string{"cpu.", "mmu.", "mem."},
		Cost:     CostLight,
		Run:      runExtSvx,
	})
	register(ExperimentSpec{
		ID:       "ext-hints",
		Title:    "Hot-region ioctl hints: data-page checks become free",
		Figure:   "extension (§4.2 segment fast path)",
		Counters: []string{"cpu.", "mmu.", "mem."},
		Cost:     CostLight,
		Run:      runExtHints,
	})
	register(ExperimentSpec{
		ID:       "ext-deep",
		Title:    "3-level PMP Tables (reserved Mode values): entries vs refs",
		Figure:   "extension (§4.3 Mode field)",
		Counters: []string{"cpu.", "mmu.", "mem."},
		Cost:     CostLight,
		Run:      runExtDeep,
	})
	register(ExperimentSpec{
		ID:       "ext-epmp",
		Title:    "ePMP (64 entries): PMP-mode capacity and HPMP fast slots",
		Figure:   "extension (§4.3 ePMP)",
		Counters: []string{"cpu.", "mmu.", "mem.", "monitor."},
		Cost:     CostLight,
		Run:      runExtEPMP,
	})
}

// runExtEPMP models §4.3's forward-looking claim: "future RISC-V
// processors will support 64 PMP entries with the ePMP extension". With 64
// entries, PMP-mode capacity grows ~4×, and Penglai-HPMP gets ~60 fast
// GMS slots — so far more hot regions ride segments.
func runExtEPMP(cfg Config) (*Result, error) {
	res := &Result{ID: "ext-epmp", Title: "16-entry PMP vs 64-entry ePMP"}
	t := stats.NewTable("ext-epmp", "Bank", "PMP-mode regions before exhaustion", "HPMP fast GMSs riding segments")
	for _, n := range []int{16, 64} {
		plat := cpu.RocketPlatform()
		plat.PMPEntries = n

		// (a) PMP-mode capacity: grant 64 KiB regions until the entries run
		// out.
		machA := cpu.NewMachine(plat, cfg.MemSize)
		monA, err := monitor.Boot(machA, monitor.DefaultConfig(monitor.ModePMP))
		if err != nil {
			return nil, err
		}
		cfg.observe(machA)
		cfg.observeMonitor(monA)
		capacity := 0
		for i := 0; ; i++ {
			region := addr.Range{Base: addr.PA(0x1000_0000 + i*addr.MiB), Size: 64 * addr.KiB}
			if _, _, err := monA.AddRegion(monitor.HostDomain, region, perm.RW, monitor.LabelSlow); err != nil {
				break
			}
			capacity++
			if capacity > 200 {
				return nil, fmt.Errorf("ext-epmp: capacity did not saturate")
			}
		}

		// (b) HPMP fast slots: label fast GMSs until they stop landing in
		// segments.
		machB := cpu.NewMachine(plat, cfg.MemSize)
		monB, err := monitor.Boot(machB, monitor.DefaultConfig(monitor.ModeHPMP))
		if err != nil {
			return nil, err
		}
		cfg.observe(machB)
		cfg.observeMonitor(monB)
		fast := 0
		for i := 0; i < 128; i++ {
			region := addr.Range{Base: addr.PA(0x1000_0000 + i*256*addr.KiB), Size: 256 * addr.KiB}
			if _, _, err := monB.AddRegion(monitor.HostDomain, region, perm.RW, monitor.LabelFast); err != nil {
				return nil, err
			}
			r, err := machB.Checker.Check(region.Base, 8, perm.Read, perm.S, 0)
			if err != nil {
				return nil, err
			}
			if !r.TableMode {
				fast++
			}
		}
		t.AddRow(fmt.Sprintf("%d entries", n),
			fmt.Sprintf("%d", capacity), fmt.Sprintf("%d", fast))
	}
	res.Tables = append(res.Tables, t)
	res.Notes = append(res.Notes,
		"The kernel's PT pool occupies one fast slot in real systems; the counts here are "+
			"raw slot capacity (entries − monitor − table pair).")
	return res, nil
}

// runExtDeep demonstrates the §4.3 Mode extension on a 32 GiB machine:
// covering the memory with 2-level tables takes two entry pairs (4 of 16
// entries) and 2 pmpte refs per uncached check; one 3-level table takes a
// single pair (2 entries) at 3 refs per check — the capacity/latency trade
// the paper reserves Mode values for.
func runExtDeep(cfg Config) (*Result, error) {
	const memSize = 32 * addr.GiB // sparse simulated memory: cheap
	res := &Result{ID: "ext-deep", Title: "Covering 32 GiB: 2-level chunks vs one 3-level table"}
	t := stats.NewTable("ext-deep", "Configuration", "HPMP entries used", "Refs/check", "Check latency (cyc)")

	probe := addr.PA(31 * addr.GiB)

	// (a) Two 2-level tables, 16 GiB each.
	{
		mach := cpu.NewMachine(cpu.RocketPlatform(), memSize)
		cfg.observe(mach)
		alloc := phys.NewFrameAllocator(addr.Range{Base: 0x10_0000, Size: 128 * addr.MiB}, false)
		entries := 0
		for i := 0; i < 2; i++ {
			region := addr.Range{Base: addr.PA(uint64(i) * 16 * addr.GiB), Size: 16 * addr.GiB}
			tbl, err := pmpt.NewTable(mach.Mem, alloc, region)
			if err != nil {
				return nil, err
			}
			if err := tbl.SetPagePerm(probe.PageBase(), perm.RW); err != nil && i == 1 {
				return nil, err
			}
			if err := mach.Checker.SetTable(2*i, region, tbl.RootBase()); err != nil {
				return nil, err
			}
			entries += 2
		}
		r, err := mach.Checker.Check(probe, 8, perm.Read, perm.S, 0)
		if err != nil {
			return nil, err
		}
		t.AddRow("2× Mode2Level (16 GiB each)",
			fmt.Sprintf("%d", entries), fmt.Sprintf("%d", r.MemRefs), fmt.Sprintf("%d", r.Latency))
	}

	// (b) One 3-level table.
	{
		mach := cpu.NewMachine(cpu.RocketPlatform(), memSize)
		cfg.observe(mach)
		alloc := phys.NewFrameAllocator(addr.Range{Base: 0x10_0000, Size: 128 * addr.MiB}, false)
		region := addr.Range{Base: 0, Size: 32 * addr.GiB}
		tbl, err := pmpt.NewDeepTable(mach.Mem, alloc, region, pmpt.Mode3Level)
		if err != nil {
			return nil, err
		}
		if err := tbl.SetPagePerm(probe.PageBase(), perm.RW); err != nil {
			return nil, err
		}
		if err := mach.Checker.SetTableMode(0, region, tbl.RootBase(), pmpt.Mode3Level); err != nil {
			return nil, err
		}
		r, err := mach.Checker.Check(probe, 8, perm.Read, perm.S, 0)
		if err != nil {
			return nil, err
		}
		t.AddRow("1× Mode3Level (32 GiB)",
			"2", fmt.Sprintf("%d", r.MemRefs), fmt.Sprintf("%d", r.Latency))
	}
	res.Tables = append(res.Tables, t)
	res.Notes = append(res.Notes,
		"§4.3: 'it is easy to extend PMP Table to support 3-level or 4-level tables by "+
			"using the reserved values in the Mode field' — implemented here; deeper tables "+
			"trade one extra reference per uncached check for 512x reach, freeing entries "+
			"for fast GMSs.")
	return res, nil
}

// runExtSvx builds raw walkers for each translation mode and counts
// references for PMP / PMPT / HPMP — the intro's "4→12 for Sv39" claim
// generalized: N+1 base references become 3(N+1) under a 2-level
// permission table, and HPMP cuts them to N+3.
func runExtSvx(cfg Config) (*Result, error) {
	res := &Result{ID: "ext-svx", Title: "Reference counts vs page-table depth (TLB miss, no PWC)"}
	t := stats.NewTable("ext-svx", "Mode", "Levels", "PMP", "PMPT", "HPMP", "HPMP/PMPT")
	for _, mode := range []addr.Mode{addr.Sv39, addr.Sv48, addr.Sv57} {
		counts := map[string]int{}
		for _, iso := range []string{"PMP", "PMPT", "HPMP"} {
			n, err := countRefs(mode, iso, cfg)
			if err != nil {
				return nil, fmt.Errorf("%v/%s: %w", mode, iso, err)
			}
			counts[iso] = n
		}
		t.AddRow(mode.String(),
			fmt.Sprintf("%d", mode.Levels()),
			fmt.Sprintf("%d", counts["PMP"]),
			fmt.Sprintf("%d", counts["PMPT"]),
			fmt.Sprintf("%d", counts["HPMP"]),
			fmt.Sprintf("%.0f%%", 100*float64(counts["HPMP"])/float64(counts["PMPT"])))
	}
	res.Tables = append(res.Tables, t)
	res.Notes = append(res.Notes,
		"Expected: (N+1) / 3(N+1) / N+3 references for an N-level table — the extra "+
			"dimension grows with depth while HPMP's data-check cost stays constant at 2.")
	return res, nil
}

// countRefs builds a minimal machine with the given translation depth and
// isolation mode and counts one cold access's references.
func countRefs(mode addr.Mode, iso string, cfg Config) (int, error) {
	memSize := cfg.MemSize
	plat := cpu.RocketPlatform()
	mcfg := plat.MMU
	mcfg.Mode = mode
	mcfg.PWCEntries = 0
	plat.MMU = mcfg
	mach := cpu.NewMachine(plat, memSize)
	cfg.observe(mach)

	ptRegion := addr.Range{Base: 0x40_0000, Size: 4 * addr.MiB}
	ptAlloc := phys.NewFrameAllocator(ptRegion, false)
	tbl, err := pt.New(mach.Mem, ptAlloc, mode)
	if err != nil {
		return 0, err
	}
	monAlloc := phys.NewFrameAllocator(addr.Range{Base: 0x100_0000, Size: 16 * addr.MiB}, false)
	all := addr.Range{Base: 0, Size: memSize}
	switch iso {
	case "PMP":
		if err := mach.Checker.SetSegment(0, all, perm.RWX, false); err != nil {
			return 0, err
		}
	case "PMPT", "HPMP":
		ptab, err := pmpt.NewTable(mach.Mem, monAlloc, all)
		if err != nil {
			return 0, err
		}
		if err := ptab.SetRangePermPaged(all, perm.RWX); err != nil {
			return 0, err
		}
		entry := 0
		if iso == "HPMP" {
			if err := mach.Checker.SetSegment(0, ptRegion, perm.RW, false); err != nil {
				return 0, err
			}
			entry = 1
		}
		if err := mach.Checker.SetTable(entry, all, ptab.RootBase()); err != nil {
			return 0, err
		}
	}
	va := addr.VA(0x4000_0000)
	if err := tbl.Map(va, 0x800_0000, perm.RW, true); err != nil {
		return 0, err
	}
	mach.MMU.SetRoot(tbl.Root())
	mach.MMU.FlushTLB()
	var r mmu.Result
	if err := mach.MMU.Access(va, perm.Read, perm.U, 0, &r); err != nil {
		return 0, err
	}
	if r.Faulted() {
		return 0, fmt.Errorf("fault: %+v", r)
	}
	return r.TotalRefs(), nil
}

// runExtHints measures a scattered pointer-chase under Penglai-HPMP with
// and without the §9 hot-region ioctl, against the PMP and PMPT bounds.
func runExtHints(cfg Config) (*Result, error) {
	iters := 4000
	if cfg.Quick {
		iters = 800
	}
	res := &Result{ID: "ext-hints", Title: "Hot-region ioctls (§9): pointer-chase latency (cycles)"}
	t := stats.NewTable("ext-hints", "Configuration", "Cycles", "vs PMP")
	type config struct {
		name string
		mode monitor.Mode
		hint bool
	}
	configs := []config{
		{"Penglai-PMP", monitor.ModePMP, false},
		{"Penglai-PMPT", monitor.ModePMPT, false},
		{"Penglai-HPMP", monitor.ModeHPMP, false},
		{"Penglai-HPMP + hint", monitor.ModeHPMP, true},
	}
	var base uint64
	for _, c := range configs {
		cycles, err := hintChase(c.mode, c.hint, iters, cfg)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", c.name, err)
		}
		if c.name == "Penglai-PMP" {
			base = cycles
		}
		t.AddRow(c.name, fmt.Sprintf("%d", cycles),
			fmt.Sprintf("%.1f%%", stats.Ratio(float64(cycles), float64(base))))
	}
	res.Tables = append(res.Tables, t)
	res.Notes = append(res.Notes,
		"The ioctl migrates the hot buffer into a contiguous fast GMS, so even the "+
			"data-page checks ride a segment — HPMP+hint approaches the PMP bound.")
	return res, nil
}

func hintChase(mode monitor.Mode, hint bool, iters int, cfg Config) (uint64, error) {
	sys, err := NewSystem(cpu.RocketPlatform(), mode, cfg)
	if err != nil {
		return 0, err
	}
	e, err := sys.NewEnv("chase", 8192)
	if err != nil {
		return 0, err
	}
	const pages = 256
	buf := e.P.MMap(pages, perm.RW)
	if err := e.Touch(buf, pages*addr.PageSize); err != nil {
		return 0, err
	}
	if hint {
		if _, err := sys.Kern.IoctlCreateHint(e, buf, pages*addr.PageSize); err != nil {
			return 0, err
		}
	}
	sys.Mach.MMU.FlushTLB()
	start := sys.Mach.Core.Now
	rng := uint64(0xfeedbeef)
	for i := 0; i < iters; i++ {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		off := (rng % (pages * addr.PageSize / 8)) * 8
		if _, err := e.Load64(buf + addr.VA(off)); err != nil {
			return 0, err
		}
	}
	return sys.Mach.Core.Now - start, nil
}
