package bench

import (
	"fmt"

	"hpmp/internal/addr"
	"hpmp/internal/cpu"
	"hpmp/internal/monitor"
	"hpmp/internal/perm"
	"hpmp/internal/stats"
)

func init() {
	register(ExperimentSpec{
		ID:       "fig14a",
		Title:    "Domain switch cost vs domain count",
		Figure:   "Fig. 14-a",
		Counters: []string{"monitor."},
		Cost:     CostLight,
		Run:      runFig14a,
	})
	register(ExperimentSpec{
		ID:       "fig14bc",
		Title:    "Physical-memory region allocation/release",
		Figure:   "Fig. 14-b/c",
		Counters: []string{"monitor."},
		Cost:     CostLight,
		Run:      runFig14bc,
	})
	register(ExperimentSpec{
		ID:       "fig14d",
		Title:    "Region allocation with different sizes",
		Figure:   "Fig. 14-d",
		Counters: []string{"monitor."},
		Cost:     CostLight,
		Run:      runFig14d,
	})
}

// bootMon boots a bare monitor (no kernel) for TEE-operation timing.
func bootMon(mode monitor.Mode, cfg Config) (*monitor.Monitor, error) {
	mach := cpu.NewMachine(cpu.RocketPlatform(), cfg.MemSize)
	mon, err := monitor.Boot(mach, monitor.DefaultConfig(mode))
	if err != nil {
		return nil, err
	}
	cfg.observe(mach)
	cfg.observeMonitor(mon)
	return mon, nil
}

// buildDomains creates n-1 enclaves (the host is domain 0), each with one
// 64 KiB region.
func buildDomains(mon *monitor.Monitor, n int) ([]monitor.DomainID, error) {
	ids := []monitor.DomainID{monitor.HostDomain}
	for i := 1; i < n; i++ {
		id, _, err := mon.CreateEnclave(fmt.Sprintf("dom-%d", i))
		if err != nil {
			return nil, err
		}
		region := addr.Range{Base: addr.PA(0x1000_0000 + i*addr.MiB), Size: 64 * addr.KiB}
		if _, _, err := mon.AddRegion(id, region, perm.RWX, monitor.LabelSlow); err != nil {
			return nil, err
		}
		ids = append(ids, id)
	}
	return ids, nil
}

func runFig14a(cfg Config) (*Result, error) {
	res := &Result{ID: "fig14a", Title: "Domain switch latency (cycles)"}
	t := stats.NewTable("Fig 14-a", "Domains", "Penglai-PMP", "Penglai-HPMP")
	for _, n := range []int{2, 12, 101} {
		row := []string{fmt.Sprintf("%d-domains", n)}
		for _, mode := range []monitor.Mode{monitor.ModePMP, monitor.ModeHPMP} {
			mon, err := bootMon(mode, cfg)
			if err != nil {
				return nil, err
			}
			ids, err := buildDomains(mon, n)
			if err != nil {
				if mode == monitor.ModePMP {
					row = append(row, "no available PMP")
					continue
				}
				return nil, err
			}
			// Measure a round trip between two distinct domains
			// (steady-state switching with all instances resident).
			a, b := ids[1], ids[len(ids)-1]
			if a == b {
				b = monitor.HostDomain
			}
			if _, err := mon.Switch(a); err != nil {
				return nil, err
			}
			c1, err := mon.Switch(b)
			if err != nil {
				return nil, err
			}
			c2, err := mon.Switch(a)
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%d", (c1+c2)/2))
		}
		t.AddRow(row...)
	}
	res.Tables = append(res.Tables, t)
	res.Notes = append(res.Notes,
		"Paper: HPMP within 1% of PMP and flat in the domain count; PMP cannot host 101 domains.")
	return res, nil
}

func runFig14bc(cfg Config) (*Result, error) {
	res := &Result{ID: "fig14bc", Title: "64 KiB region allocation and release latency (cycles)"}
	regions := 100
	if cfg.Quick {
		regions = 40
	}
	type sample struct {
		idx    int
		cycles uint64
	}
	alloc := map[monitor.Mode][]sample{}
	rel := map[monitor.Mode][]sample{}
	for _, mode := range []monitor.Mode{monitor.ModePMP, monitor.ModeHPMP} {
		mon, err := bootMon(mode, cfg)
		if err != nil {
			return nil, err
		}
		enc, _, err := mon.CreateEnclave("worker")
		if err != nil {
			return nil, err
		}
		var ids []monitor.GMSID
		for i := 0; i < regions; i++ {
			region := addr.Range{Base: addr.PA(0x1000_0000 + i*addr.MiB), Size: 64 * addr.KiB}
			id, cycles, err := mon.AddRegion(enc, region, perm.RW, monitor.LabelSlow)
			if err != nil {
				break // PMP runs out of entries — the paper's point
			}
			ids = append(ids, id)
			alloc[mode] = append(alloc[mode], sample{i + 1, cycles})
		}
		for i := len(ids) - 1; i >= 0; i-- {
			cycles, err := mon.ReleaseRegion(ids[i])
			if err != nil {
				return nil, err
			}
			rel[mode] = append(rel[mode], sample{len(ids) - i, cycles})
		}
	}
	mk := func(title string, data map[monitor.Mode][]sample) *stats.Table {
		t := stats.NewTable(title, "Region#", "Penglai-PMP", "Penglai-HPMP")
		for _, idx := range []int{1, 5, 10, 14, 20, 50, regions} {
			row := []string{fmt.Sprintf("%d", idx)}
			for _, mode := range []monitor.Mode{monitor.ModePMP, monitor.ModeHPMP} {
				v := "-"
				for _, s := range data[mode] {
					if s.idx == idx {
						v = fmt.Sprintf("%d", s.cycles)
					}
				}
				row = append(row, v)
			}
			t.AddRow(row...)
		}
		return t
	}
	res.Tables = append(res.Tables,
		mk("Fig 14-b: allocation", alloc),
		mk("Fig 14-c: release", rel))
	pmpMax := len(alloc[monitor.ModePMP])
	res.Notes = append(res.Notes,
		fmt.Sprintf("PMP exhausted its entries after %d regions; HPMP allocated all %d.", pmpMax, regions),
		"Paper: HPMP slightly slower per op (it edits tables and registers) but supports >100 regions.")
	return res, nil
}

func runFig14d(cfg Config) (*Result, error) {
	res := &Result{ID: "fig14d", Title: "Region allocation latency vs size (Penglai-HPMP, cycles)"}
	t := stats.NewTable("Fig 14-d", "Size (MiB)", "Paged table edits", "With 32 MiB huge entries")
	sizes := []uint64{1, 2, 4, 8, 16, 32, 64}
	if cfg.Quick {
		sizes = []uint64{1, 4, 16, 32}
	}
	for _, mib := range sizes {
		row := []string{fmt.Sprintf("%d", mib)}
		for _, huge := range []bool{false, true} {
			mach := cpu.NewMachine(cpu.RocketPlatform(), cfg.MemSize)
			mcfg := monitor.DefaultConfig(monitor.ModeHPMP)
			mcfg.HugeTableRanges = huge
			mon, err := monitor.Boot(mach, mcfg)
			if err != nil {
				return nil, err
			}
			cfg.observe(mach)
			cfg.observeMonitor(mon)
			enc, _, err := mon.CreateEnclave("sized")
			if err != nil {
				return nil, err
			}
			// 32 MiB-aligned base so huge entries are applicable.
			region := addr.Range{Base: 0x1000_0000, Size: mib * addr.MiB}
			_, cycles, err := mon.AddRegion(enc, region, perm.RW, monitor.LabelSlow)
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%d", cycles))
		}
		t.AddRow(row...)
	}
	res.Tables = append(res.Tables, t)
	res.Notes = append(res.Notes,
		"Paper: latency grows with size; the large-permission-table-page optimization "+
			"updates a 32 MiB region with a single entry write (§8.7).")
	return res, nil
}
