package bench

import (
	"fmt"

	"hpmp/internal/addr"
	"hpmp/internal/cpu"
	"hpmp/internal/perm"
	"hpmp/internal/phys"
	"hpmp/internal/pmpt"
	"hpmp/internal/stats"
	"hpmp/internal/virt"
)

func init() {
	register(ExperimentSpec{
		ID:       "fig13",
		Title:    "Memory access latency in a virtualized environment (Rocket)",
		Figure:   "Fig. 13",
		Counters: []string{"cpu.", "mmu.", "mem."},
		Cost:     CostLight,
		Run:      runFig13,
	})
}

// virtMethod labels the four Fig. 13 configurations.
type virtMethod int

const (
	vmPMP virtMethod = iota
	vmPMPT
	vmHPMP
	vmHPMPGPT
)

var virtMethodNames = map[virtMethod]string{
	vmPMP: "PMP", vmPMPT: "PMPT", vmHPMP: "HPMP", vmHPMPGPT: "HPMP-GPT",
}

// virtCase labels the five Fig. 13 states.
var virtCases = []string{"TC1", "After hfence.v", "After hfence.g", "TC3", "TC4"}

// buildVirtRig assembles a guest under the given method and maps two
// adjacent guest data pages.
func buildVirtRig(method virtMethod, cfg Config) (*virt.Hypervisor, addr.VA, error) {
	memSize := cfg.MemSize
	mach := cpu.NewMachine(cpu.RocketPlatform(), memSize)
	cfg.observe(mach)
	nptRegion := addr.Range{Base: 0x0100_0000, Size: 4 * addr.MiB}
	gptRegion := addr.Range{Base: 0x0180_0000, Size: 4 * addr.MiB}
	tblRegion := addr.Range{Base: 0x0400_0000, Size: 16 * addr.MiB}
	dataRegion := addr.Range{Base: 0x0800_0000, Size: 64 * addr.MiB}

	nptAlloc := phys.NewFrameAllocator(nptRegion, false)
	dataAlloc := phys.NewFrameAllocator(dataRegion, false)
	tblAlloc := phys.NewFrameAllocator(tblRegion, false)

	// HPMP-GPT: guest PT host frames in the dedicated contiguous region;
	// otherwise they come from general data memory (scattered among data).
	gptAlloc := dataAlloc
	if method == vmHPMPGPT {
		gptAlloc = phys.NewFrameAllocator(gptRegion, false)
	}

	npt, err := virt.NewNestedTable(mach.Mem, nptAlloc)
	if err != nil {
		return nil, 0, err
	}
	guest, err := virt.NewGuestTable(mach.Mem, npt, 0x4000_0000, 256, gptAlloc)
	if err != nil {
		return nil, 0, err
	}

	checker := mach.Checker
	all := addr.Range{Base: 0, Size: memSize}
	switch method {
	case vmPMP:
		if err := checker.SetSegment(0, all, perm.RWX, false); err != nil {
			return nil, 0, err
		}
	default:
		ptab, err := pmpt.NewTable(mach.Mem, tblAlloc, all)
		if err != nil {
			return nil, 0, err
		}
		if err := ptab.SetRangePermPaged(all, perm.RWX); err != nil {
			return nil, 0, err
		}
		entry := 0
		if method == vmHPMP || method == vmHPMPGPT {
			if err := checker.SetSegment(entry, nptRegion, perm.RW, false); err != nil {
				return nil, 0, err
			}
			entry++
		}
		if method == vmHPMPGPT {
			if err := checker.SetSegment(entry, gptRegion, perm.RW, false); err != nil {
				return nil, 0, err
			}
			entry++
		}
		if err := checker.SetTable(entry, all, ptab.RootBase()); err != nil {
			return nil, 0, err
		}
	}

	hyp := virt.NewHypervisor(mach, checker, npt, guest)
	gva := addr.VA(0x1000_0000)
	for i := 0; i < 2; i++ {
		gpa := addr.GPA(0x8000_0000 + i*addr.PageSize)
		pa, err := dataAlloc.Alloc()
		if err != nil {
			return nil, 0, err
		}
		if err := npt.Map(gpa, pa, perm.RW); err != nil {
			return nil, 0, err
		}
		if err := guest.Map(gva+addr.VA(i*addr.PageSize), gpa, perm.RW); err != nil {
			return nil, 0, err
		}
	}
	return hyp, gva, nil
}

// virtProbe measures the hlv.d latency under one state recipe.
func virtProbe(method virtMethod, vcase string, cfg Config) (uint64, error) {
	hyp, gva, err := buildVirtRig(method, cfg)
	if err != nil {
		return 0, err
	}
	access := func(va addr.VA) (virt.Result, error) {
		return hyp.AccessGuest(va, perm.Read, hyp.Mach.Core.Now)
	}
	switch vcase {
	case "TC1":
		hyp.Mach.ColdReset()
	case "After hfence.v":
		if _, err := access(gva); err != nil {
			return 0, err
		}
		hyp.HFenceVVMA()
	case "After hfence.g":
		if _, err := access(gva); err != nil {
			return 0, err
		}
		hyp.HFenceGVMA()
	case "TC3":
		// Warm the neighbour page: shared upper-level state stays hot.
		if _, err := access(gva + addr.PageSize); err != nil {
			return 0, err
		}
		if _, err := access(gva); err != nil {
			return 0, err
		}
		hyp.GTLB.FlushVPN(gva.Frame())
	case "TC4":
		if _, err := access(gva); err != nil {
			return 0, err
		}
	default:
		return 0, fmt.Errorf("virtProbe: unknown case %q", vcase)
	}
	res, err := access(gva)
	if err != nil {
		return 0, err
	}
	if res.PageFault || res.AccessFault {
		return 0, fmt.Errorf("virtProbe %v/%s: fault %+v", method, vcase, res)
	}
	lat := res.Latency
	if lat == 0 {
		lat = 1
	}
	return lat, nil
}

// CollectFig13 measures the 5×4 latency matrix.
func CollectFig13(cfg Config) (map[string]map[virtMethod]uint64, error) {
	out := map[string]map[virtMethod]uint64{}
	for _, vcase := range virtCases {
		out[vcase] = map[virtMethod]uint64{}
		for _, m := range []virtMethod{vmPMP, vmPMPT, vmHPMP, vmHPMPGPT} {
			lat, err := virtProbe(m, vcase, cfg)
			if err != nil {
				return nil, err
			}
			out[vcase][m] = lat
		}
	}
	return out, nil
}

func runFig13(cfg Config) (*Result, error) {
	data, err := CollectFig13(cfg)
	if err != nil {
		return nil, err
	}
	res := &Result{ID: "fig13", Title: "hlv.d latency in a virtualized environment (cycles, Rocket)"}
	t := stats.NewTable("Fig 13", "Case", "PMPT", "HPMP", "HPMP-GPT", "PMP",
		"HPMP saves", "HPMP-GPT saves")
	for _, vcase := range virtCases {
		pmpt := float64(data[vcase][vmPMPT])
		hpmp := float64(data[vcase][vmHPMP])
		gpt := float64(data[vcase][vmHPMPGPT])
		pmp := float64(data[vcase][vmPMP])
		t.AddRow(vcase,
			fmt.Sprintf("%.0f", pmpt),
			fmt.Sprintf("%.0f", hpmp),
			fmt.Sprintf("%.0f", gpt),
			fmt.Sprintf("%.0f", pmp),
			fmt.Sprintf("%.1f%%", stats.Reduction(pmpt, hpmp, pmp)),
			fmt.Sprintf("%.1f%%", stats.Reduction(pmpt, gpt, pmp)))
	}
	res.Tables = append(res.Tables, t)
	res.Notes = append(res.Notes,
		"Sv39 guest PT over Sv39x4 NPT; accesses via the hlv.d path (paper §8.6).",
		"Paper: PMPT +89.9–155% over PMP; HPMP cuts the extra cost to 29.7–75.6%; HPMP-GPT to 16.3–26.8%.")
	return res, nil
}
