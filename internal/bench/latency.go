package bench

import (
	"fmt"

	"hpmp/internal/addr"
	"hpmp/internal/cpu"
	"hpmp/internal/mmu"
	"hpmp/internal/monitor"
	"hpmp/internal/perm"
	"hpmp/internal/stats"
)

func init() {
	register(ExperimentSpec{
		ID:       "fig10",
		Title:    "Memory access latency (ld/sd, TC1–TC4, Rocket+BOOM)",
		Figure:   "Fig. 10",
		Counters: []string{"cpu.", "mmu.", "mem.", "kernel.", "monitor."},
		Cost:     CostLight,
		Run:      runFig10,
	})
	register(ExperimentSpec{
		ID:       "fig3a",
		Title:    "Preview: single-ld latency, Table vs Segment (BOOM)",
		Figure:   "Fig. 3-a",
		Counters: []string{"cpu.", "mmu.", "mem.", "kernel.", "monitor."},
		Cost:     CostLight,
		Run:      runFig3a,
	})
}

// TestCase is one Table 2 state recipe.
type TestCase int

const (
	TC1 TestCase = iota + 1 // everything cold
	TC2                     // caches warm, TLB+PWC cold
	TC3                     // adjacent-page access: PWC upper levels warm
	TC4                     // everything warm (TLB hit)
)

func (tc TestCase) String() string { return fmt.Sprintf("TC%d", int(tc)) }

// latencyProbe measures one ld or sd under a given state recipe. It builds
// a fresh system, maps a victim page plus an adjacent one, primes the
// state per Table 2, and returns the measured access latency in cycles.
func latencyProbe(plat cpu.Platform, mode monitor.Mode, tc TestCase, write bool, cfg Config) (uint64, error) {
	sys, err := NewSystem(plat, mode, cfg)
	if err != nil {
		return 0, err
	}
	e, err := sys.NewEnv("probe", 1024)
	if err != nil {
		return 0, err
	}
	va := e.P.Heap()
	// Materialize the victim page and its neighbour so no demand faults
	// pollute the measurement.
	if err := e.Touch(va, 2*addr.PageSize); err != nil {
		return 0, err
	}

	kind := perm.Read
	if write {
		kind = perm.Write
	}
	mm := sys.Mach.MMU
	core := sys.Mach.Core

	var res mmu.Result
	prime := func(target addr.VA) error {
		return mm.Access(target, kind, perm.U, core.Now, &res)
	}

	target := va
	switch tc {
	case TC1:
		sys.Mach.ColdReset()
	case TC2:
		// Warm caches (data + PT pages + permission tables), then flush
		// translation state only.
		if err := prime(va); err != nil {
			return 0, err
		}
		mm.FlushTLB()
	case TC3:
		// Access the neighbour page first: upper-level PTEs land in the
		// PWC and caches; then probe the victim page, whose L0 PTE fetch
		// misses the PWC but hits the warm cache. TLB miss for the victim.
		if err := prime(va + addr.PageSize); err != nil {
			return 0, err
		}
		if err := prime(va); err != nil { // warm the victim's own lines
			return 0, err
		}
		mm.FlushVA(va)                                    // victim TLB entry out, PWC flushed
		if err := prime(va + addr.PageSize); err != nil { // re-warm PWC upper levels
			return 0, err
		}
	case TC4:
		if err := prime(va); err != nil {
			return 0, err
		}
	}

	if err := mm.Access(target, kind, perm.U, core.Now, &res); err != nil {
		return 0, err
	}
	if res.Faulted() {
		return 0, fmt.Errorf("latencyProbe: fault under %v/%v: %+v", mode, tc, res)
	}
	lat := res.Latency
	if lat == 0 {
		lat = 1
	}
	return lat, nil
}

// Fig10Data is the full latency matrix, exported for reuse by fig3a and
// the tests.
type Fig10Data struct {
	// Lat[platform][op][mode][tc] in cycles.
	Lat map[string]map[string]map[monitor.Mode]map[TestCase]uint64
}

// CollectFig10 measures every (platform, op, mode, test-case) combination.
func CollectFig10(cfg Config) (*Fig10Data, error) {
	d := &Fig10Data{Lat: map[string]map[string]map[monitor.Mode]map[TestCase]uint64{}}
	plats := map[string]cpu.Platform{
		"Rocket": cpu.RocketPlatform(),
		"BOOM":   cpu.BOOMPlatform(),
	}
	for pname, plat := range plats {
		d.Lat[pname] = map[string]map[monitor.Mode]map[TestCase]uint64{}
		for _, op := range []string{"ld", "sd"} {
			d.Lat[pname][op] = map[monitor.Mode]map[TestCase]uint64{}
			for _, mode := range AllModes {
				d.Lat[pname][op][mode] = map[TestCase]uint64{}
				for _, tc := range []TestCase{TC1, TC2, TC3, TC4} {
					lat, err := latencyProbe(plat, mode, tc, op == "sd", cfg)
					if err != nil {
						return nil, err
					}
					d.Lat[pname][op][mode][tc] = lat
				}
			}
		}
	}
	return d, nil
}

func runFig10(cfg Config) (*Result, error) {
	data, err := CollectFig10(cfg)
	if err != nil {
		return nil, err
	}
	res := &Result{ID: "fig10", Title: "Memory access latency under TC1–TC4 (cycles)"}
	for _, pname := range []string{"Rocket", "BOOM"} {
		for _, op := range []string{"ld", "sd"} {
			t := stats.NewTable(fmt.Sprintf("%s (%s)", op, pname),
				"Case", "PMPTable", "HPMP", "PMP", "HPMP saves")
			for _, tc := range []TestCase{TC1, TC2, TC3, TC4} {
				pmpt := data.Lat[pname][op][monitor.ModePMPT][tc]
				hpmp := data.Lat[pname][op][monitor.ModeHPMP][tc]
				pmp := data.Lat[pname][op][monitor.ModePMP][tc]
				saved := stats.Reduction(float64(pmpt), float64(hpmp), float64(pmp))
				t.AddRow(tc.String(),
					fmt.Sprintf("%d", pmpt),
					fmt.Sprintf("%d", hpmp),
					fmt.Sprintf("%d", pmp),
					fmt.Sprintf("%.1f%%", saved))
			}
			res.Tables = append(res.Tables, t)
		}
	}
	res.Notes = append(res.Notes,
		"PMPTW-Cache disabled (paper §7 default); PWC 8 entries per Table 1.",
		"'HPMP saves' is the share of the PMPT-over-PMP gap HPMP removes (paper: 23.1%–73.1% on BOOM).")
	return res, nil
}

func runFig3a(cfg Config) (*Result, error) {
	data, err := CollectFig10(cfg)
	if err != nil {
		return nil, err
	}
	res := &Result{ID: "fig3a", Title: "ld latency normalized to Segment (BOOM)"}
	t := stats.NewTable("Fig 3-a", "Case", "Segment", "Table")
	var ratios []float64
	worst := 0.0
	for _, tc := range []TestCase{TC1, TC2, TC3, TC4} {
		pmp := float64(data.Lat["BOOM"]["ld"][monitor.ModePMP][tc])
		pmpt := float64(data.Lat["BOOM"]["ld"][monitor.ModePMPT][tc])
		r := stats.Ratio(pmpt, pmp)
		if tc != TC4 { // TLB-hit case is identical by construction
			ratios = append(ratios, r)
		}
		if r > worst {
			worst = r
		}
	}
	t.AddRow("Avg", "100.0", fmt.Sprintf("%.1f", stats.Mean(ratios)))
	t.AddRow("Worst", "100.0", fmt.Sprintf("%.1f", worst))
	res.Tables = append(res.Tables, t)
	return res, nil
}
