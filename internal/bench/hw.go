package bench

import (
	"fmt"

	"hpmp/internal/hwcost"
	"hpmp/internal/stats"
)

func init() {
	register(ExperimentSpec{
		ID:     "table4",
		Title:  "Hardware resource costs of the top module",
		Figure: "Table 4",
		// Analytical model: boots no simulated system, so the counter
		// snapshot is intentionally empty.
		Cost: CostLight,
		Run:  runTable4,
	})
}

func runTable4(cfg Config) (*Result, error) {
	res := &Result{ID: "table4", Title: "Hardware resource costs (state/logic accounting model)"}
	t := stats.NewTable("Table 4", "Resource",
		"Baseline", "HPMP", "Cost", "Base+H", "HPMP+H", "Cost")
	plain := hwcost.Table4(false)
	hyp := hwcost.Table4(true)
	for i, row := range plain {
		h := hyp[i]
		t.AddRow(row.Resource,
			fmt.Sprintf("%d", row.Baseline),
			fmt.Sprintf("%d", row.HPMP),
			fmt.Sprintf("%.2f%%", row.CostPct),
			fmt.Sprintf("%d", h.Baseline),
			fmt.Sprintf("%d", h.HPMP),
			fmt.Sprintf("%.2f%%", h.CostPct))
	}
	res.Tables = append(res.Tables, t)
	res.Notes = append(res.Notes,
		"Substitution: without RTL, costs come from a register/SRAM/logic inventory of the "+
			"HPMP additions against the paper's baseline utilization (paper: 0.94%/1.18% LUT, 0.16%/0.78% FF, 0 elsewhere).")
	return res, nil
}
