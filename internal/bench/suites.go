package bench

import (
	"fmt"

	"hpmp/internal/cpu"
	"hpmp/internal/monitor"
	"hpmp/internal/stats"
	"hpmp/internal/workloads"
)

func init() {
	register(ExperimentSpec{
		ID:       "fig11a",
		Title:    "RV8 benchmark (Rocket, execution time)",
		Figure:   "Fig. 11-a",
		Counters: []string{"cpu.", "mmu.", "mem.", "kernel.", "monitor."},
		Cost:     CostHeavy,
		Run:      runFig11a,
	})
	register(ExperimentSpec{
		ID:       "fig11bc",
		Title:    "GAP benchmark (Rocket + BOOM, normalized latency)",
		Figure:   "Fig. 11-b/c",
		Counters: []string{"cpu.", "mmu.", "mem.", "kernel.", "monitor."},
		Cost:     CostHeavy,
		Run:      runFig11bc,
	})
	register(ExperimentSpec{
		ID:       "fig3b",
		Title:    "Preview: GAP latency, Table vs Segment (BOOM)",
		Figure:   "Fig. 3-b",
		Counters: []string{"cpu.", "mmu.", "mem.", "kernel.", "monitor."},
		Cost:     CostMedium,
		Run:      runFig3b,
	})
}

// runSuite executes each workload in a fresh long-lived process on each
// mode and returns cycles[mode][workload]. Long-lived means one process
// per (mode, workload): the suite benchmarks run warm, unlike serverless.
func runSuite(plat cpu.Platform, suite []workloads.Workload, cfg Config) (map[monitor.Mode]map[string]uint64, error) {
	out := map[monitor.Mode]map[string]uint64{}
	for _, mode := range AllModes {
		out[mode] = map[string]uint64{}
		for _, w := range suite {
			sys, err := NewSystem(plat, mode, cfg)
			if err != nil {
				return nil, err
			}
			e, err := sys.NewEnv(w.Name(), 96*1024)
			if err != nil {
				return nil, err
			}
			start := sys.Mach.Core.Now
			if _, err := w.Run(e); err != nil {
				return nil, fmt.Errorf("%s under %v: %w", w.Name(), mode, err)
			}
			out[mode][w.Name()] = sys.Mach.Core.Now - start
		}
	}
	return out, nil
}

func rv8ForConfig(cfg Config) []workloads.Workload {
	if !cfg.Quick {
		return workloads.RV8Suite()
	}
	return []workloads.Workload{
		&workloads.AES{Blocks: 96},
		&workloads.Norx{Blocks: 96},
		&workloads.Primes{Limit: 4000},
		&workloads.SHA512{Chunks: 48},
		&workloads.QSort{N: 1024},
		&workloads.Dhrystone{Iterations: 600},
		&workloads.Miniz{N: 6 * 1024},
		&workloads.BigInt{Words: 48, Rounds: 4},
	}
}

func gapScale(cfg Config) int {
	if cfg.Quick {
		return 8
	}
	// Scale 12 (4096 vertices, ~64K directed edges): the CSR and per-vertex
	// arrays overflow the scaled TLB reach, reproducing the paper's
	// walk-bound GAP regime (paper runs scale 20 on the FPGA).
	return 12
}

func runFig11a(cfg Config) (*Result, error) {
	data, err := runSuite(cpu.RocketPlatform(), rv8ForConfig(cfg), cfg)
	if err != nil {
		return nil, err
	}
	res := &Result{ID: "fig11a", Title: "RV8 on Rocket"}
	t := stats.NewTable("RV8 (Rocket)", "Benchmark",
		"Penglai-PMP (Mcyc)", "Penglai-PMPT (Mcyc)", "Penglai-HPMP (Mcyc)",
		"PMPT ovh", "HPMP ovh")
	for _, w := range rv8ForConfig(cfg) {
		pmp := float64(data[monitor.ModePMP][w.Name()])
		pmpt := float64(data[monitor.ModePMPT][w.Name()])
		hpmp := float64(data[monitor.ModeHPMP][w.Name()])
		t.AddRow(w.Name(),
			fmt.Sprintf("%.3f", pmp/1e6),
			fmt.Sprintf("%.3f", pmpt/1e6),
			fmt.Sprintf("%.3f", hpmp/1e6),
			fmt.Sprintf("%+.2f%%", stats.Overhead(pmpt, pmp)),
			fmt.Sprintf("%+.2f%%", stats.Overhead(hpmp, pmp)))
	}
	res.Tables = append(res.Tables, t)
	res.Notes = append(res.Notes,
		"Paper: PMPT adds 0.0%–1.7% on RV8 (Rocket); HPMP reduces to 0.0%–0.5%.")
	return res, nil
}

// CollectGAP runs the GAP suite on one platform, returning normalized
// latencies (% of PMP).
func CollectGAP(plat cpu.Platform, cfg Config) (map[string]map[monitor.Mode]float64, []string, error) {
	suite := workloads.GAPSuite(gapScale(cfg))
	data, err := runSuite(plat, suite, cfg)
	if err != nil {
		return nil, nil, err
	}
	out := map[string]map[monitor.Mode]float64{}
	var names []string
	for _, w := range suite {
		names = append(names, w.Name())
		pmp := float64(data[monitor.ModePMP][w.Name()])
		out[w.Name()] = map[monitor.Mode]float64{
			monitor.ModePMP:  100,
			monitor.ModePMPT: stats.Ratio(float64(data[monitor.ModePMPT][w.Name()]), pmp),
			monitor.ModeHPMP: stats.Ratio(float64(data[monitor.ModeHPMP][w.Name()]), pmp),
		}
	}
	return out, names, nil
}

func runFig11bc(cfg Config) (*Result, error) {
	res := &Result{ID: "fig11bc", Title: "GAP normalized latency (PMP = 100%)"}
	for _, p := range []struct {
		name string
		plat cpu.Platform
	}{{"Rocket", cpu.RocketPlatform()}, {"BOOM", cpu.BOOMPlatform()}} {
		norm, names, err := CollectGAP(p.plat, cfg)
		if err != nil {
			return nil, err
		}
		t := stats.NewTable(fmt.Sprintf("GAP (%s)", p.name),
			"Kernel", "Penglai-PMP", "Penglai-PMPT", "Penglai-HPMP")
		for _, n := range names {
			t.AddRow(n, "100.0",
				fmt.Sprintf("%.1f", norm[n][monitor.ModePMPT]),
				fmt.Sprintf("%.1f", norm[n][monitor.ModeHPMP]))
		}
		res.Tables = append(res.Tables, t)
	}
	res.Notes = append(res.Notes,
		"Paper: PMPT +1.2–6.7% (Rocket), +1.8–9.6% (BOOM); HPMP ≤1.4% / ≤2.4%.",
		fmt.Sprintf("Graph: Kron scale %d, edge factor 8 (paper: scale 20; scaled for simulation time).", gapScale(cfg)))
	return res, nil
}

func runFig3b(cfg Config) (*Result, error) {
	norm, names, err := CollectGAP(cpu.BOOMPlatform(), cfg)
	if err != nil {
		return nil, err
	}
	var ratios []float64
	worst := 0.0
	for _, n := range names {
		r := norm[n][monitor.ModePMPT]
		ratios = append(ratios, r)
		if r > worst {
			worst = r
		}
	}
	res := &Result{ID: "fig3b", Title: "GAP latency normalized to Segment (BOOM)"}
	t := stats.NewTable("Fig 3-b", "Case", "Segment", "Table")
	t.AddRow("Avg", "100.0", fmt.Sprintf("%.1f", stats.Mean(ratios)))
	t.AddRow("Worst", "100.0", fmt.Sprintf("%.1f", worst))
	res.Tables = append(res.Tables, t)
	return res, nil
}
