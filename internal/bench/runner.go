package bench

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sort"
	"strings"
	"sync"
	"time"

	"hpmp/internal/obs"
	"hpmp/internal/stats"
)

// This file is the experiment runner: a worker-pool scheduler that executes
// registered experiments concurrently while keeping the output stream
// deterministic. Each experiment builds its own simulated machine, so runs
// are independent; the runner adds fault isolation (a panicking or failing
// experiment never aborts the others), per-experiment timeouts, context
// cancellation, and a per-experiment observability snapshot (wall time plus
// the cpu/mmu/kernel/monitor counters of every System the experiment
// booted).

// Status classifies one experiment attempt.
type Status string

const (
	// StatusOK: the experiment completed and produced a result.
	StatusOK Status = "ok"
	// StatusError: Run returned an error (or a nil result).
	StatusError Status = "error"
	// StatusPanic: Run panicked; the panic was recovered into Err.
	StatusPanic Status = "panic"
	// StatusTimeout: Run exceeded the per-experiment timeout.
	StatusTimeout Status = "timeout"
	// StatusCanceled: the run context was canceled before completion.
	StatusCanceled Status = "canceled"
)

// Outcome is the runner's record of one experiment attempt.
type Outcome struct {
	Experiment Experiment
	// Result is non-nil only when Status is StatusOK.
	Result *Result
	Err    error
	Status Status
	// Wall is the attempt's wall-clock duration (also copied into
	// Result.Wall on success).
	Wall time.Duration
	// Trace is the experiment's event tracer, non-nil only when tracing was
	// requested (RunOptions.TraceEvery > 0) and Status is StatusOK. A
	// timed-out experiment's goroutine is abandoned, not stopped, and could
	// still be emitting — so its tracer is never exposed.
	Trace *obs.Tracer
}

// OK reports whether the attempt succeeded.
func (o Outcome) OK() bool { return o.Status == StatusOK }

// RunOptions tunes the runner.
type RunOptions struct {
	// Parallel is the worker count; <= 0 means runtime.NumCPU().
	// Parallel == 1 runs experiments strictly sequentially in input order,
	// matching the historical CLI behaviour.
	Parallel int
	// Timeout bounds each experiment's wall time; 0 means no limit. The
	// simulator is not preemptible, so a timed-out experiment's goroutine
	// is abandoned, not interrupted.
	Timeout time.Duration
	// TraceEvery enables event tracing when > 0: each experiment gets its
	// own tracer sampling every TraceEvery-th translation event.
	TraceEvery int
	// TraceKeep is the per-experiment ring capacity; <= 0 means
	// obs.DefaultRing. Ignored unless TraceEvery > 0.
	TraceKeep int
	// Progress, when non-nil, is called once per finished experiment in
	// completion order (unlike emit, which waits for input order), with the
	// number finished so far and the total. Calls are serialized.
	Progress func(done, total int, o Outcome)
}

// RunAll executes the experiments on a worker pool and returns one Outcome
// per experiment, in input order. Failures are isolated: every experiment
// is attempted regardless of how many before it failed, panicked, or timed
// out. If emit is non-nil it is called exactly once per experiment, in
// input order, as soon as that experiment and all its predecessors have
// finished — so output streams deterministically no matter which worker
// finishes first. Canceling ctx marks not-yet-finished experiments
// StatusCanceled (in-flight simulations are abandoned, not interrupted).
func RunAll(ctx context.Context, cfg Config, exps []Experiment, opts RunOptions, emit func(Outcome)) []Outcome {
	if ctx == nil {
		ctx = context.Background()
	}
	n := len(exps)
	if n == 0 {
		return nil
	}
	workers := opts.Parallel
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > n {
		workers = n
	}

	// Every index gets exactly one outcome; per-index channels let the
	// emitter drain results in input order while workers complete in any
	// order.
	outs := make([]chan Outcome, n)
	for i := range outs {
		outs[i] = make(chan Outcome, 1)
	}
	jobs := make(chan int, n)
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)

	var progressMu sync.Mutex
	finished := 0
	report := func(o Outcome) {
		if opts.Progress == nil {
			return
		}
		progressMu.Lock()
		finished++
		opts.Progress(finished, n, o)
		progressMu.Unlock()
	}

	for w := 0; w < workers; w++ {
		go func() {
			for i := range jobs {
				o := runOne(ctx, cfg, exps[i], opts)
				report(o)
				outs[i] <- o
			}
		}()
	}

	outcomes := make([]Outcome, 0, n)
	for i := 0; i < n; i++ {
		o := <-outs[i]
		outcomes = append(outcomes, o)
		if emit != nil {
			emit(o)
		}
	}
	return outcomes
}

// panicError marks an error recovered from an experiment panic.
type panicError struct {
	val   any
	stack []byte
}

func (e *panicError) Error() string {
	return fmt.Sprintf("panic: %v\n%s", e.val, e.stack)
}

// runOne attempts a single experiment with panic recovery, an optional
// timeout, counter observation, and (when requested) event tracing.
func runOne(ctx context.Context, cfg Config, exp Experiment, opts RunOptions) Outcome {
	timeout := opts.Timeout
	out := Outcome{Experiment: exp}
	if err := ctx.Err(); err != nil {
		out.Status = StatusCanceled
		out.Err = err
		return out
	}

	ob := &observer{}
	cfg.obs = ob
	if opts.TraceEvery > 0 {
		cfg.tracer = obs.NewTracer(opts.TraceKeep, opts.TraceEvery)
	}

	type reply struct {
		res *Result
		err error
	}
	done := make(chan reply, 1)
	start := time.Now()
	go func() {
		defer func() {
			if p := recover(); p != nil {
				done <- reply{nil, &panicError{val: p, stack: debug.Stack()}}
			}
		}()
		res, err := exp.Run(cfg)
		done <- reply{res, err}
	}()

	var timer <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		timer = t.C
	}

	select {
	case r := <-done:
		out.Wall = time.Since(start)
		switch {
		case r.err != nil:
			if _, ok := r.err.(*panicError); ok {
				out.Status = StatusPanic
			} else {
				out.Status = StatusError
			}
			out.Err = fmt.Errorf("%s: %w", exp.ID, r.err)
		case r.res == nil:
			out.Status = StatusError
			out.Err = fmt.Errorf("%s: experiment returned no result", exp.ID)
		default:
			out.Status = StatusOK
			out.Result = r.res
			r.res.Wall = out.Wall
			ob.snapshot(&r.res.Counters)
			r.res.Hists = make(map[string]*stats.Histogram)
			ob.snapshotHists(r.res.Hists)
			out.Trace = cfg.tracer
		}
	case <-timer:
		out.Wall = time.Since(start)
		out.Status = StatusTimeout
		out.Err = fmt.Errorf("%s: timed out after %v", exp.ID, timeout)
	case <-ctx.Done():
		out.Wall = time.Since(start)
		out.Status = StatusCanceled
		out.Err = ctx.Err()
	}
	return out
}

// observer collects counter sources from every System/machine an experiment
// boots, so the runner can snapshot them into Result.Counters when the
// experiment finishes. Safe for concurrent use; a nil observer is a no-op
// (experiments run outside the runner skip observation entirely).
type observer struct {
	mu        sync.Mutex
	snaps     []func(into *stats.Counters)
	histSnaps []func(into map[string]*stats.Histogram)
}

func (o *observer) add(f func(into *stats.Counters)) {
	if o == nil {
		return
	}
	o.mu.Lock()
	o.snaps = append(o.snaps, f)
	o.mu.Unlock()
}

// addHists registers a histogram collector alongside the counter snapshots.
func (o *observer) addHists(f func(into map[string]*stats.Histogram)) {
	if o == nil {
		return
	}
	o.mu.Lock()
	o.histSnaps = append(o.histSnaps, f)
	o.mu.Unlock()
}

// snapshot merges every observed counter set into one aggregate. Called
// only after the experiment's goroutine has finished, so the counters are
// quiescent.
func (o *observer) snapshot(into *stats.Counters) {
	o.mu.Lock()
	defer o.mu.Unlock()
	for _, f := range o.snaps {
		f(into)
	}
}

// snapshotHists merges every observed latency histogram into one family
// map. Same quiescence contract as snapshot.
func (o *observer) snapshotHists(into map[string]*stats.Histogram) {
	o.mu.Lock()
	defer o.mu.Unlock()
	for _, f := range o.histSnaps {
		f(into)
	}
}

// Summary renders the end-of-run report: one row per experiment in input
// order — id, status, wall time, result size, and the error for anything
// that failed. Wall times vary run to run, so callers should keep the
// summary out of byte-compared output streams (the CLI prints it to
// stderr).
func Summary(outcomes []Outcome) *stats.Table {
	t := stats.NewTable("run summary", "Experiment", "Status", "Wall", "Tables", "Rows", "Error")
	for _, o := range outcomes {
		tables, rows := 0, 0
		if o.Result != nil {
			tables = len(o.Result.Tables)
			for _, tb := range o.Result.Tables {
				rows += tb.NumRows()
			}
		}
		errText := ""
		if o.Err != nil {
			errText = firstLine(o.Err.Error())
		}
		t.AddRow(o.Experiment.ID, string(o.Status),
			o.Wall.Round(time.Millisecond).String(),
			fmt.Sprintf("%d", tables), fmt.Sprintf("%d", rows), errText)
	}
	return t
}

// CountersCSV renders one experiment's counter snapshot as CSV with the
// names sorted, so the emission is deterministic even though experiments
// boot systems in nondeterministic (map-ordered) sequences.
func CountersCSV(res *Result) string {
	t := stats.NewTable("", "counter", "value")
	snap := res.Counters.Snapshot()
	names := make([]string, 0, len(snap))
	for n := range snap {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		t.AddRow(n, fmt.Sprintf("%d", snap[n]))
	}
	return t.CSV()
}

// MetricsFor builds one outcome's exportable metrics snapshot: the spec
// identification, the merged counter snapshot with derived rates, wall
// time, and the tracer summary when tracing was on. Works for failed
// outcomes too — they export with an empty counter set and their status.
func MetricsFor(o Outcome, quick bool) *obs.Metrics {
	counters := map[string]uint64{}
	if o.Result != nil {
		counters = o.Result.Counters.Snapshot()
	}
	m := obs.NewMetrics(o.Experiment.ID, counters)
	if o.Result != nil && len(o.Result.Hists) > 0 {
		m.Histograms = make(map[string]stats.HistogramSnapshot, len(o.Result.Hists))
		for name, h := range o.Result.Hists {
			m.Histograms[name] = h.Snapshot()
		}
	}
	m.Title = o.Experiment.Title
	m.Figure = o.Experiment.Figure
	m.Status = string(o.Status)
	m.Quick = quick
	m.WallSeconds = o.Wall.Seconds()
	m.SetTracer(o.Trace)
	return m
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

// naturalLess orders experiment IDs with numeric awareness: runs of digits
// compare as numbers, everything else byte-wise. So fig3a < fig10 (3 < 10)
// and table3 < table4, where plain lexicographic order would put fig10
// first.
func naturalLess(a, b string) bool {
	for a != "" && b != "" {
		ac, an := chunk(a)
		bc, bn := chunk(b)
		if ac != bc {
			if isDigit(ac[0]) && isDigit(bc[0]) {
				at, bt := trimZeros(ac), trimZeros(bc)
				if len(at) != len(bt) {
					return len(at) < len(bt)
				}
				if at != bt {
					return at < bt
				}
				// Same numeric value, different zero-padding: fewer
				// leading zeros first, deterministically.
				return len(ac) < len(bc)
			}
			return ac < bc
		}
		a, b = an, bn
	}
	return len(a) < len(b)
}

// chunk splits s into its leading run of digits or non-digits plus the
// rest.
func chunk(s string) (head, tail string) {
	i := 1
	for i < len(s) && isDigit(s[i]) == isDigit(s[0]) {
		i++
	}
	return s[:i], s[i:]
}

func isDigit(c byte) bool { return '0' <= c && c <= '9' }

func trimZeros(s string) string {
	i := 0
	for i < len(s)-1 && s[i] == '0' {
		i++
	}
	return s[i:]
}
