package bench

import (
	"strings"
	"testing"
)

// TestAllExperimentsQuick runs every registered experiment at Quick size
// and checks each produces at least one non-empty table.
func TestAllExperimentsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	cfg := DefaultConfig()
	cfg.Quick = true
	for _, exp := range All() {
		exp := exp
		t.Run(exp.ID, func(t *testing.T) {
			res, err := exp.Run(cfg)
			if err != nil {
				t.Fatalf("%s: %v", exp.ID, err)
			}
			if len(res.Tables) == 0 {
				t.Fatalf("%s produced no tables", exp.ID)
			}
			for _, tb := range res.Tables {
				if tb.NumRows() == 0 {
					t.Errorf("%s has an empty table", exp.ID)
				}
			}
			out := res.Render()
			if !strings.Contains(out, exp.ID) {
				t.Errorf("render missing id header")
			}
			t.Log("\n" + out)
		})
	}
}

func TestRegistry(t *testing.T) {
	want := []string{
		"ext-deep", "ext-enclave", "ext-epmp", "ext-hints", "ext-svx",
		"fig10", "fig11a", "fig11bc", "fig12ab", "fig12c", "fig12de",
		"fig13", "fig14a", "fig14bc", "fig14d", "fig15", "fig16", "fig17",
		"fig3a", "fig3b", "fig3c", "fig3d",
		"scen-aging", "scen-coldflood", "scen-shootdown", "scen-virtdepth",
		"table3", "table4",
	}
	for _, id := range want {
		if _, ok := ByID(id); !ok {
			t.Errorf("experiment %s not registered", id)
		}
	}
	if len(All()) != len(want) {
		t.Errorf("registered %d experiments, want %d", len(All()), len(want))
	}
	if _, ok := ByID("nope"); ok {
		t.Error("unknown id must not resolve")
	}
	// Every registered ID must be unique and well-formed (Register enforces
	// this at init time; assert it held).
	seen := map[string]bool{}
	for _, e := range All() {
		if seen[e.ID] {
			t.Errorf("duplicate experiment id %q", e.ID)
		}
		seen[e.ID] = true
		if !idPattern.MatchString(e.ID) {
			t.Errorf("malformed experiment id %q", e.ID)
		}
		if e.Run == nil {
			t.Errorf("experiment %q has no Run function", e.ID)
		}
		if e.Title == "" {
			t.Errorf("experiment %q has no title", e.ID)
		}
	}
}
