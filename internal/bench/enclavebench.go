package bench

import (
	"fmt"

	"hpmp/internal/addr"
	"hpmp/internal/cpu"
	"hpmp/internal/kernel"
	"hpmp/internal/stats"
	"hpmp/internal/workloads"
)

func init() {
	register(ExperimentSpec{
		ID:       "ext-enclave",
		Title:    "Enclave-hosted vs host-hosted serverless invocations",
		Figure:   "extension (§6 deployment models)",
		Counters: []string{"cpu.", "mmu.", "mem.", "kernel.", "monitor."},
		Cost:     CostMedium,
		Run:      runExtEnclave,
	})
}

// runExtEnclave measures the paper's actual deployment model: each
// invocation is a *fresh enclave* (create → donate memory → run → destroy),
// compared against the same function as a plain host process. The enclave
// path adds the monitor's lifecycle costs (domain create, two GMS grants
// with their table edits, domain switches, scrubbed teardown) on top of
// the translation overheads — the full TEE price of a cold serverless
// invocation.
func runExtEnclave(cfg Config) (*Result, error) {
	fn := &workloads.Chameleon{Rows: 48, Cols: 10}
	if cfg.Quick {
		fn = &workloads.Chameleon{Rows: 20, Cols: 8}
	}
	res := &Result{ID: "ext-enclave", Title: "Cold chameleon invocation (cycles, Rocket)"}
	t := stats.NewTable("ext-enclave", "Mode", "Host process", "Fresh enclave", "TEE overhead")
	for _, mode := range AllModes {
		var lat [2]uint64
		for variant := 0; variant < 2; variant++ {
			sys, err := NewSystem(cpu.RocketPlatform(), mode, cfg)
			if err != nil {
				return nil, err
			}
			if _, err := sys.NewEnv("invoker", 1024); err != nil {
				return nil, err
			}
			start := sys.Mach.Core.Now
			if variant == 0 {
				p, err := sys.Kern.Spawn(kernel.Image{Name: fn.Name(), TextPages: 32, DataPages: 16, HeapPages: 32 * 1024})
				if err != nil {
					return nil, err
				}
				if err := sys.Kern.SwitchTo(p.PID); err != nil {
					return nil, err
				}
				e := &kernel.Env{K: sys.Kern, P: p}
				if _, err := fn.Run(e); err != nil {
					return nil, err
				}
				if err := sys.Kern.Exit(p.PID); err != nil {
					return nil, err
				}
			} else {
				p, err := sys.Kern.SpawnEnclave(kernel.Image{Name: fn.Name(), TextPages: 32, DataPages: 16}, 32*addr.MiB)
				if err != nil {
					return nil, err
				}
				if err := sys.Kern.SwitchTo(p.PID); err != nil {
					return nil, err
				}
				e := &kernel.Env{K: sys.Kern, P: p}
				if _, err := fn.Run(e); err != nil {
					return nil, err
				}
				if err := sys.Kern.ExitEnclave(p.PID); err != nil {
					return nil, err
				}
			}
			lat[variant] = sys.Mach.Core.Now - start
		}
		t.AddRow(ModeNames[mode],
			fmt.Sprintf("%d", lat[0]),
			fmt.Sprintf("%d", lat[1]),
			fmt.Sprintf("%+.1f%%", stats.Overhead(float64(lat[1]), float64(lat[0]))))
	}
	res.Tables = append(res.Tables, t)
	res.Notes = append(res.Notes,
		"The enclave path includes domain creation, two GMS grants (PT pool fast + data), "+
			"the domain switches, and scrubbed teardown. HPMP's table edits make its grant "+
			"cost close to PMPT's while keeping the runtime overhead near PMP.")
	return res, nil
}
