// Package bench is the experiment harness: one runner per table and figure
// of the paper's evaluation (§8), each regenerating the same rows/series
// the paper reports, on the simulated platforms. Absolute numbers differ
// from the FPGA (documented in EXPERIMENTS.md); orderings, crossovers, and
// rough factors are the reproduction target.
package bench

import (
	"fmt"
	"regexp"
	"sort"
	"sync"
	"time"

	"hpmp/internal/addr"
	"hpmp/internal/cpu"
	"hpmp/internal/kernel"
	"hpmp/internal/monitor"
	"hpmp/internal/obs"
	"hpmp/internal/perm"
	"hpmp/internal/simcfg"
	"hpmp/internal/stats"
)

// Config tunes experiment sizes.
type Config struct {
	// Quick shrinks workload sizes for CI and `go test -bench`.
	Quick bool
	// Machine is the unified machine configuration (internal/simcfg).
	// Experiments pick their own platform and isolation mode per paper
	// figure, so only MemSize and the cache-geometry overrides apply to
	// the systems they boot; Platform/Mode carry the canonical defaults.
	// Embedded, so the historical cfg.MemSize spelling keeps working.
	simcfg.Machine
	// Workload scales the traffic-side workloads beyond the paper's
	// defaults (miniredis keyspace/request count, serverless invocation
	// reps, cold-start flood size). Zero value = tier defaults.
	Workload simcfg.WorkloadScale

	// obs, when set by the runner, collects counters from every System and
	// machine the experiment boots. Config is passed by value, so the
	// pointer is shared across the copies one experiment makes.
	obs *observer
	// tracer, when set by the runner, is attached to every machine the
	// experiment boots via cpu.Machine.SetTracer, so the translation-path
	// event trace covers the whole experiment.
	tracer *obs.Tracer
}

// MinMemSize is the smallest simulated DRAM size the harness accepts —
// simcfg's floor, re-exported for call-site compatibility.
const MinMemSize = simcfg.MinMemSize

// DefaultConfig returns the full-size configuration.
func DefaultConfig() Config {
	return Config{Machine: simcfg.Default()}
}

// Validate rejects configurations that would only fail later, deep inside
// an experiment. The machine checks live in simcfg — the one validation
// path shared with replay and the daemon.
func (c Config) Validate() error {
	if err := c.Machine.Validate(); err != nil {
		return err
	}
	return c.Workload.Validate()
}

// observe registers a machine's cpu and mmu counters with the run's
// observer and attaches the run's tracer (when one is configured) to the
// machine's translation-path hooks; a no-op outside the runner.
func (c Config) observe(m *cpu.Machine) {
	if m == nil {
		return
	}
	if c.tracer != nil {
		m.SetTracer(c.tracer)
	}
	if c.obs == nil {
		return
	}
	c.obs.add(func(into *stats.Counters) {
		into.Merge(&m.Core.Counters)
		into.Merge(&m.MMU.Counters)
		// The translation structures keep their own counter sets; merging
		// them here is what makes the per-experiment metrics snapshot
		// (hit-rate derivations in internal/obs) self-contained.
		into.Merge(&m.MMU.Walker.Counters)
		into.Merge(&m.MMU.ITLB.Counters)
		into.Merge(&m.MMU.DTLB.Counters)
		into.Merge(&m.MMU.STLB.Counters)
		into.Merge(&m.Hier.Counters)
		if chk, ok := m.MMU.HPMPChecker(); ok {
			into.Merge(&chk.Counters)
			if chk.Walker != nil {
				into.Merge(&chk.Walker.Counters)
			}
		}
	})
	c.obs.addHists(func(into map[string]*stats.Histogram) {
		mergeHist(into, "mmu.access_latency", m.MMU.LatHist)
		mergeHist(into, "ptw.walk_latency", m.MMU.Walker.Hist)
		if chk, ok := m.MMU.HPMPChecker(); ok {
			mergeHist(into, "hpmp.check_latency", chk.Hist)
			if chk.Walker != nil {
				mergeHist(into, "pmptw.walk_latency", chk.Walker.Hist())
			}
		}
	})
}

// mergeHist folds one machine's latency histogram into the experiment-wide
// family map, creating the family on first sight. Nil sources (a machine
// assembled without the structure) are skipped.
func mergeHist(into map[string]*stats.Histogram, name string, src *stats.Histogram) {
	if src == nil {
		return
	}
	dst, ok := into[name]
	if !ok {
		dst = stats.DefaultLatencyHistogram()
		into[name] = dst
	}
	dst.Merge(src)
}

// observeKernel registers a kernel's counters with the run's observer.
func (c Config) observeKernel(k *kernel.Kernel) {
	if c.obs == nil || k == nil {
		return
	}
	c.obs.add(func(into *stats.Counters) { into.Merge(&k.Counters) })
}

// observeMonitor registers a monitor's counters with the run's observer.
func (c Config) observeMonitor(m *monitor.Monitor) {
	if c.obs == nil || m == nil {
		return
	}
	c.obs.add(func(into *stats.Counters) { into.Merge(&m.Counters) })
}

// Result is one experiment's output.
type Result struct {
	ID     string
	Title  string
	Tables []*stats.Table
	// Notes records methodology details worth printing with the tables.
	Notes []string

	// Wall is the experiment's wall-clock duration, filled in by the
	// runner. It is intentionally not part of Render(): wall times vary
	// run to run, while the tables are deterministic.
	Wall time.Duration
	// Counters aggregates the cpu/mmu/kernel/monitor counters of every
	// System the experiment booted under the runner — a per-experiment
	// observability snapshot (see CountersCSV). Also excluded from
	// Render(); counter *values* are deterministic but their first-use
	// order is not.
	Counters stats.Counters
	// Hists aggregates the cycle-latency histograms of every machine the
	// experiment booted under the runner, keyed by family
	// (mmu.access_latency, ptw.walk_latency, pmptw.walk_latency,
	// hpmp.check_latency). Like Counters it is filled by the runner and
	// excluded from Render().
	Hists map[string]*stats.Histogram
}

// Render formats the whole result as text.
func (r *Result) Render() string {
	out := fmt.Sprintf("### %s — %s\n\n", r.ID, r.Title)
	for _, t := range r.Tables {
		out += t.Render() + "\n"
	}
	for _, n := range r.Notes {
		out += "note: " + n + "\n"
	}
	return out
}

// CostClass classifies an experiment's relative full-size runtime, so CI
// jobs and users can pick cheap subsets without memorizing experiment
// internals.
type CostClass string

const (
	// CostLight: sub-second even at full size (analytical models, single
	// accesses).
	CostLight CostClass = "light"
	// CostMedium: seconds at full size (single-suite sweeps).
	CostMedium CostClass = "medium"
	// CostHeavy: the long poles of `run all` (multi-platform suite sweeps).
	CostHeavy CostClass = "heavy"
)

// ExperimentSpec is one registered experiment: the run function plus the
// metadata the CLI (`list`, `describe`), the metrics exporter, and the
// spec-conformance test are driven by. It replaces the bare (id, title,
// func) registry.
type ExperimentSpec struct {
	ID    string
	Title string
	// Figure names the paper figure or table the experiment regenerates
	// (e.g. "Fig. 10", "Table 3"), or the extension it models.
	Figure string
	// Counters lists counter-key prefixes a successful run is expected to
	// produce in its observability snapshot; the spec test enforces them.
	Counters []string
	// Cost classifies full-size runtime.
	Cost CostClass
	Run  func(cfg Config) (*Result, error)
}

// Experiment aliases ExperimentSpec — the pre-redesign name, kept so call
// sites read naturally where the metadata is irrelevant.
type Experiment = ExperimentSpec

var (
	regMu    sync.Mutex
	registry []ExperimentSpec
)

// idPattern constrains experiment IDs to lowercase alphanumerics with
// single interior dashes — the shape every figure/table id has.
var idPattern = regexp.MustCompile(`^[a-z0-9]+(-[a-z0-9]+)*$`)

// Register adds an experiment to the registry. It panics on a duplicate or
// malformed ID: both are programming errors that would otherwise surface
// as an ambiguous ByID much later. An empty Cost defaults to CostMedium.
func Register(e ExperimentSpec) {
	if !idPattern.MatchString(e.ID) {
		panic(fmt.Sprintf("bench: malformed experiment id %q", e.ID))
	}
	if e.Run == nil {
		panic(fmt.Sprintf("bench: experiment %q has no Run function", e.ID))
	}
	switch e.Cost {
	case CostLight, CostMedium, CostHeavy:
	case "":
		e.Cost = CostMedium
	default:
		panic(fmt.Sprintf("bench: experiment %q has unknown cost class %q", e.ID, e.Cost))
	}
	regMu.Lock()
	defer regMu.Unlock()
	for _, prev := range registry {
		if prev.ID == e.ID {
			panic(fmt.Sprintf("bench: duplicate experiment id %q", e.ID))
		}
	}
	registry = append(registry, e)
}

func register(spec ExperimentSpec) { Register(spec) }

// All returns every experiment in natural ID order: digit runs compare
// numerically, so fig3a–fig3d precede fig10 and table3 precedes table4.
// This is the order `list`, `run all`, and result emission share.
func All() []Experiment {
	regMu.Lock()
	defer regMu.Unlock()
	out := make([]Experiment, len(registry))
	copy(out, registry)
	sort.SliceStable(out, func(i, j int) bool { return naturalLess(out[i].ID, out[j].ID) })
	return out
}

// ByID finds an experiment.
func ByID(id string) (Experiment, bool) {
	regMu.Lock()
	defer regMu.Unlock()
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// System is a fully booted stack: machine + monitor + kernel.
type System struct {
	Mach *cpu.Machine
	Mon  *monitor.Monitor // nil for the Host-PMP (no TEE) baseline
	Kern *kernel.Kernel
	Mode monitor.Mode
}

// NewSystem boots a machine of the given platform under the given
// isolation mode and starts the kernel. The machine's DRAM size comes from
// cfg.MemSize; under the runner the system's counters are observed for the
// experiment's Result snapshot.
func NewSystem(plat cpu.Platform, mode monitor.Mode, cfg Config) (*System, error) {
	mach := cpu.NewMachine(plat, cfg.MemSize)
	mon, err := monitor.Boot(mach, monitor.DefaultConfig(mode))
	if err != nil {
		return nil, fmt.Errorf("bench: booting monitor: %w", err)
	}
	k, err := kernel.New(mach, mon, kernel.DefaultConfig(cfg.MemSize))
	if err != nil {
		return nil, fmt.Errorf("bench: booting kernel: %w", err)
	}
	cfg.observe(mach)
	cfg.observeKernel(k)
	cfg.observeMonitor(mon)
	return &System{Mach: mach, Mon: mon, Kern: k, Mode: mode}, nil
}

// NewHostSystem boots the non-secure baseline ("Host-PMP" in Fig. 12): no
// TEE deployed, but PMP is implemented — one RWX segment covers DRAM.
func NewHostSystem(plat cpu.Platform, cfg Config) (*System, error) {
	mach := cpu.NewMachine(plat, cfg.MemSize)
	if err := mach.Checker.SetSegment(0, addr.Range{Base: 0, Size: napotCeil(cfg.MemSize)}, perm.RWX, false); err != nil {
		return nil, err
	}
	k, err := kernel.New(mach, nil, kernel.DefaultConfig(cfg.MemSize))
	if err != nil {
		return nil, err
	}
	cfg.observe(mach)
	cfg.observeKernel(k)
	return &System{Mach: mach, Mon: nil, Kern: k, Mode: monitor.ModePMP}, nil
}

func napotCeil(size uint64) uint64 {
	n := uint64(1)
	for n < size {
		n <<= 1
	}
	return n
}

// NewEnv spawns a fresh process and returns its environment.
func (s *System) NewEnv(name string, heapPages int) (*kernel.Env, error) {
	if heapPages == 0 {
		heapPages = 64 * 1024
	}
	p, err := s.Kern.Spawn(kernel.Image{Name: name, TextPages: 32, DataPages: 32, HeapPages: heapPages})
	if err != nil {
		return nil, err
	}
	return s.Kern.NewEnv(p)
}

// ModeNames maps the three isolation modes to the paper's labels.
var ModeNames = map[monitor.Mode]string{
	monitor.ModePMP:  "PMP",
	monitor.ModePMPT: "PMPT",
	monitor.ModeHPMP: "HPMP",
}

// AllModes is the standard comparison order.
var AllModes = []monitor.Mode{monitor.ModePMP, monitor.ModePMPT, monitor.ModeHPMP}
