// Package bench is the experiment harness: one runner per table and figure
// of the paper's evaluation (§8), each regenerating the same rows/series
// the paper reports, on the simulated platforms. Absolute numbers differ
// from the FPGA (documented in EXPERIMENTS.md); orderings, crossovers, and
// rough factors are the reproduction target.
package bench

import (
	"fmt"
	"sort"

	"hpmp/internal/addr"
	"hpmp/internal/cpu"
	"hpmp/internal/kernel"
	"hpmp/internal/monitor"
	"hpmp/internal/perm"
	"hpmp/internal/stats"
)

// Config tunes experiment sizes.
type Config struct {
	// Quick shrinks workload sizes for CI and `go test -bench`.
	Quick bool
	// MemSize is the simulated DRAM size.
	MemSize uint64
}

// DefaultConfig returns the full-size configuration.
func DefaultConfig() Config {
	return Config{MemSize: 512 * addr.MiB}
}

// Result is one experiment's output.
type Result struct {
	ID     string
	Title  string
	Tables []*stats.Table
	// Notes records methodology details worth printing with the tables.
	Notes []string
}

// Render formats the whole result as text.
func (r *Result) Render() string {
	out := fmt.Sprintf("### %s — %s\n\n", r.ID, r.Title)
	for _, t := range r.Tables {
		out += t.Render() + "\n"
	}
	for _, n := range r.Notes {
		out += "note: " + n + "\n"
	}
	return out
}

// Experiment is one registered runner.
type Experiment struct {
	ID    string
	Title string
	Run   func(cfg Config) (*Result, error)
}

var registry []Experiment

func register(id, title string, run func(cfg Config) (*Result, error)) {
	registry = append(registry, Experiment{ID: id, Title: title, Run: run})
}

// All returns every experiment in registration order.
func All() []Experiment {
	out := make([]Experiment, len(registry))
	copy(out, registry)
	sort.SliceStable(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ByID finds an experiment.
func ByID(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// System is a fully booted stack: machine + monitor + kernel.
type System struct {
	Mach *cpu.Machine
	Mon  *monitor.Monitor // nil for the Host-PMP (no TEE) baseline
	Kern *kernel.Kernel
	Mode monitor.Mode
}

// NewSystem boots a machine of the given platform under the given
// isolation mode and starts the kernel.
func NewSystem(plat cpu.Platform, mode monitor.Mode, memSize uint64) (*System, error) {
	mach := cpu.NewMachine(plat, memSize)
	mon, err := monitor.Boot(mach, monitor.DefaultConfig(mode))
	if err != nil {
		return nil, fmt.Errorf("bench: booting monitor: %w", err)
	}
	k, err := kernel.New(mach, mon, kernel.DefaultConfig(memSize))
	if err != nil {
		return nil, fmt.Errorf("bench: booting kernel: %w", err)
	}
	return &System{Mach: mach, Mon: mon, Kern: k, Mode: mode}, nil
}

// NewHostSystem boots the non-secure baseline ("Host-PMP" in Fig. 12): no
// TEE deployed, but PMP is implemented — one RWX segment covers DRAM.
func NewHostSystem(plat cpu.Platform, memSize uint64) (*System, error) {
	mach := cpu.NewMachine(plat, memSize)
	if err := mach.Checker.SetSegment(0, addr.Range{Base: 0, Size: napotCeil(memSize)}, perm.RWX, false); err != nil {
		return nil, err
	}
	k, err := kernel.New(mach, nil, kernel.DefaultConfig(memSize))
	if err != nil {
		return nil, err
	}
	return &System{Mach: mach, Mon: nil, Kern: k, Mode: monitor.ModePMP}, nil
}

func napotCeil(size uint64) uint64 {
	n := uint64(1)
	for n < size {
		n <<= 1
	}
	return n
}

// NewEnv spawns a fresh process and returns its environment.
func (s *System) NewEnv(name string, heapPages int) (*kernel.Env, error) {
	if heapPages == 0 {
		heapPages = 64 * 1024
	}
	p, err := s.Kern.Spawn(kernel.Image{Name: name, TextPages: 32, DataPages: 32, HeapPages: heapPages})
	if err != nil {
		return nil, err
	}
	return s.Kern.NewEnv(p)
}

// ModeNames maps the three isolation modes to the paper's labels.
var ModeNames = map[monitor.Mode]string{
	monitor.ModePMP:  "PMP",
	monitor.ModePMPT: "PMPT",
	monitor.ModeHPMP: "HPMP",
}

// AllModes is the standard comparison order.
var AllModes = []monitor.Mode{monitor.ModePMP, monitor.ModePMPT, monitor.ModeHPMP}
