// Package merkle implements the mountable Merkle tree Penglai uses for
// physical-memory integrity protection (paper §5 "It employs encryption and
// merkle tree to defend against physical memory attacks", and the
// "Mountable Merkle Tree" component of Fig. 7).
//
// The tree hashes fixed-size blocks (4 KiB pages) into a binary tree of
// SHA-256 digests. "Mountable" means sub-trees can be unmounted (their root
// digest retained, their interior nodes discarded) and remounted later after
// re-verification — the mechanism Penglai uses to protect far more memory
// than on-chip storage could hold.
package merkle

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
)

// BlockSize is the protected granule (one page).
const BlockSize = 4096

// Digest is a SHA-256 hash.
type Digest [sha256.Size]byte

// hashLeaf domain-separates leaf hashes from interior hashes to prevent
// second-preimage splicing.
func hashLeaf(index uint64, data []byte) Digest {
	h := sha256.New()
	var pre [9]byte
	pre[0] = 0x00
	binary.LittleEndian.PutUint64(pre[1:], index)
	h.Write(pre[:])
	h.Write(data)
	var d Digest
	h.Sum(d[:0])
	return d
}

func hashInterior(l, r Digest) Digest {
	h := sha256.New()
	h.Write([]byte{0x01})
	h.Write(l[:])
	h.Write(r[:])
	var d Digest
	h.Sum(d[:0])
	return d
}

// Tree is a Merkle tree over n fixed-size blocks. Interior levels are stored
// densely; level 0 is the leaves. Unmounted subtrees drop their interior
// storage but keep the subtree root inside the parent level.
type Tree struct {
	nBlocks int
	levels  [][]Digest // levels[0] = leaves ... levels[h] = [root]
	mounted []bool     // per top-level subtree (see SubtreeSpan)
	// subtreeHeight is the level treated as "mount units": subtrees of
	// 2^subtreeHeight leaves can be unmounted independently.
	subtreeHeight int
}

// New builds a tree over nBlocks zero-initialized blocks. subtreeSpan is the
// number of leaves per mountable subtree (a power of two ≥ 1).
func New(nBlocks, subtreeSpan int) (*Tree, error) {
	if nBlocks <= 0 {
		return nil, fmt.Errorf("merkle: need at least one block")
	}
	if subtreeSpan <= 0 || subtreeSpan&(subtreeSpan-1) != 0 {
		return nil, fmt.Errorf("merkle: subtree span %d must be a power of two", subtreeSpan)
	}
	// Round leaf count up to a power of two for a perfect tree.
	n := 1
	for n < nBlocks {
		n <<= 1
	}
	if subtreeSpan > n {
		subtreeSpan = n
	}
	t := &Tree{nBlocks: nBlocks}
	for subtreeSpan>>t.subtreeHeight > 1 {
		t.subtreeHeight++
	}
	zero := hashLeaf(0, make([]byte, BlockSize))
	_ = zero
	// Build levels bottom-up; leaves are hashed with their index, so they
	// are not all identical.
	leaves := make([]Digest, n)
	empty := make([]byte, BlockSize)
	for i := range leaves {
		leaves[i] = hashLeaf(uint64(i), empty)
	}
	t.levels = append(t.levels, leaves)
	for len(t.levels[len(t.levels)-1]) > 1 {
		prev := t.levels[len(t.levels)-1]
		next := make([]Digest, len(prev)/2)
		for i := range next {
			next[i] = hashInterior(prev[2*i], prev[2*i+1])
		}
		t.levels = append(t.levels, next)
	}
	t.mounted = make([]bool, n/subtreeSpan)
	for i := range t.mounted {
		t.mounted[i] = true
	}
	return t, nil
}

// NumBlocks returns the number of protected blocks.
func (t *Tree) NumBlocks() int { return t.nBlocks }

// Root returns the tree root digest.
func (t *Tree) Root() Digest { return t.levels[len(t.levels)-1][0] }

// SubtreeSpan returns the number of leaves per mountable subtree.
func (t *Tree) SubtreeSpan() int { return 1 << t.subtreeHeight }

func (t *Tree) subtreeOf(block int) int { return block >> t.subtreeHeight }

// Update recomputes the path from block upward after the block's content
// changed. It fails if the block's subtree is unmounted.
func (t *Tree) Update(block int, data []byte) error {
	if block < 0 || block >= t.nBlocks {
		return fmt.Errorf("merkle: block %d out of range", block)
	}
	if len(data) != BlockSize {
		return fmt.Errorf("merkle: block data must be %d bytes", BlockSize)
	}
	if !t.mounted[t.subtreeOf(block)] {
		return fmt.Errorf("merkle: subtree %d is unmounted", t.subtreeOf(block))
	}
	t.levels[0][block] = hashLeaf(uint64(block), data)
	idx := block
	for lvl := 0; lvl < len(t.levels)-1; lvl++ {
		idx /= 2
		t.levels[lvl+1][idx] = hashInterior(t.levels[lvl][2*idx], t.levels[lvl][2*idx+1])
	}
	return nil
}

// Verify checks that data matches the recorded digest for block.
func (t *Tree) Verify(block int, data []byte) (bool, error) {
	if block < 0 || block >= t.nBlocks {
		return false, fmt.Errorf("merkle: block %d out of range", block)
	}
	if !t.mounted[t.subtreeOf(block)] {
		return false, fmt.Errorf("merkle: subtree %d is unmounted", t.subtreeOf(block))
	}
	if len(data) != BlockSize {
		return false, fmt.Errorf("merkle: block data must be %d bytes", BlockSize)
	}
	want := t.levels[0][block]
	return hashLeaf(uint64(block), data) == want, nil
}

// Unmount drops a subtree's leaf digests, retaining only its root (which
// stays folded into the upper levels). Returns the subtree root so a caller
// can persist it.
func (t *Tree) Unmount(subtree int) (Digest, error) {
	if subtree < 0 || subtree >= len(t.mounted) {
		return Digest{}, fmt.Errorf("merkle: subtree %d out of range", subtree)
	}
	if !t.mounted[subtree] {
		return Digest{}, fmt.Errorf("merkle: subtree %d already unmounted", subtree)
	}
	t.mounted[subtree] = false
	return t.subtreeRoot(subtree), nil
}

// Mount re-attaches a subtree by verifying the candidate leaf digests
// against the retained subtree root.
func (t *Tree) Mount(subtree int, leaves []Digest) error {
	if subtree < 0 || subtree >= len(t.mounted) {
		return fmt.Errorf("merkle: subtree %d out of range", subtree)
	}
	if t.mounted[subtree] {
		return fmt.Errorf("merkle: subtree %d already mounted", subtree)
	}
	span := t.SubtreeSpan()
	if len(leaves) != span {
		return fmt.Errorf("merkle: want %d leaf digests, got %d", span, len(leaves))
	}
	// Recompute the candidate subtree root.
	cur := make([]Digest, span)
	copy(cur, leaves)
	for len(cur) > 1 {
		next := make([]Digest, len(cur)/2)
		for i := range next {
			next[i] = hashInterior(cur[2*i], cur[2*i+1])
		}
		cur = next
	}
	if cur[0] != t.subtreeRoot(subtree) {
		return fmt.Errorf("merkle: subtree %d root mismatch — tampered while unmounted", subtree)
	}
	copy(t.levels[0][subtree*span:(subtree+1)*span], leaves)
	t.mounted[subtree] = true
	return nil
}

// Mounted reports whether the subtree is currently mounted.
func (t *Tree) Mounted(subtree int) bool { return t.mounted[subtree] }

// LeafDigests returns a copy of the subtree's current leaf digests (what a
// caller must persist before Unmount to Mount later).
func (t *Tree) LeafDigests(subtree int) []Digest {
	span := t.SubtreeSpan()
	out := make([]Digest, span)
	copy(out, t.levels[0][subtree*span:(subtree+1)*span])
	return out
}

// subtreeRoot returns the digest at the subtree's apex level.
func (t *Tree) subtreeRoot(subtree int) Digest {
	return t.levels[t.subtreeHeight][subtree]
}

// HashBlock exposes the leaf hash for external persistence.
func HashBlock(index uint64, data []byte) Digest { return hashLeaf(index, data) }
