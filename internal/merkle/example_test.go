package merkle_test

import (
	"fmt"

	"hpmp/internal/merkle"
)

// Example shows the swap-protection flow: hash a page, unmount its subtree
// while the page lives in untrusted storage, and catch tampering on
// remount/verify.
func Example() {
	tree, err := merkle.New(64, 16)
	if err != nil {
		panic(err)
	}
	page := make([]byte, merkle.BlockSize)
	copy(page, "enclave page")
	tree.Update(3, page)

	saved := tree.LeafDigests(0) // persist before unmounting
	if _, err := tree.Unmount(0); err != nil {
		panic(err)
	}

	// ... the page sits in host storage; the host flips a byte ...
	page[0] ^= 0xff

	if err := tree.Mount(0, saved); err != nil {
		panic(err) // the digests themselves were not forged
	}
	ok, err := tree.Verify(3, page)
	if err != nil {
		panic(err)
	}
	fmt.Printf("tampered page verifies: %v\n", ok)

	page[0] ^= 0xff // restore
	ok, _ = tree.Verify(3, page)
	fmt.Printf("original page verifies: %v\n", ok)
	// Output:
	// tampered page verifies: false
	// original page verifies: true
}
