package merkle

import (
	"bytes"
	"testing"
	"testing/quick"
)

func block(fill byte) []byte {
	b := make([]byte, BlockSize)
	for i := range b {
		b[i] = fill
	}
	return b
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 4); err == nil {
		t.Error("zero blocks must fail")
	}
	if _, err := New(8, 3); err == nil {
		t.Error("non-power-of-two span must fail")
	}
	tr, err := New(10, 4) // rounds to 16 leaves
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumBlocks() != 10 || tr.SubtreeSpan() != 4 {
		t.Errorf("geometry: %d blocks, span %d", tr.NumBlocks(), tr.SubtreeSpan())
	}
}

func TestUpdateVerify(t *testing.T) {
	tr, _ := New(8, 4)
	data := block(0xab)
	if err := tr.Update(3, data); err != nil {
		t.Fatal(err)
	}
	ok, err := tr.Verify(3, data)
	if err != nil || !ok {
		t.Errorf("verify of written data: %v %v", ok, err)
	}
	ok, _ = tr.Verify(3, block(0xac))
	if ok {
		t.Error("verify of wrong data must fail")
	}
	// Untouched block still verifies as zero.
	ok, _ = tr.Verify(0, block(0))
	if !ok {
		t.Error("zero block must verify initially")
	}
}

func TestRootChangesOnUpdate(t *testing.T) {
	tr, _ := New(8, 4)
	r0 := tr.Root()
	tr.Update(5, block(1))
	r1 := tr.Root()
	if r0 == r1 {
		t.Error("root must change after an update")
	}
	// Same content → same root (determinism).
	tr2, _ := New(8, 4)
	tr2.Update(5, block(1))
	if tr2.Root() != r1 {
		t.Error("identical trees must have identical roots")
	}
}

func TestLeafIndexBinding(t *testing.T) {
	// The same bytes at different indices must hash differently (splice
	// protection).
	if HashBlock(0, block(7)) == HashBlock(1, block(7)) {
		t.Error("leaf hash must bind the block index")
	}
}

func TestUnmountMountRoundTrip(t *testing.T) {
	tr, _ := New(16, 4)
	tr.Update(4, block(0x11))
	tr.Update(5, block(0x22))
	saved := tr.LeafDigests(1) // subtree 1 = blocks 4..7
	rootBefore := tr.Root()

	if _, err := tr.Unmount(1); err != nil {
		t.Fatal(err)
	}
	if tr.Mounted(1) {
		t.Fatal("subtree should be unmounted")
	}
	// Operations on an unmounted subtree fail.
	if err := tr.Update(4, block(9)); err == nil {
		t.Error("update of unmounted subtree must fail")
	}
	if _, err := tr.Verify(5, block(0x22)); err == nil {
		t.Error("verify of unmounted subtree must fail")
	}
	// Other subtrees still work.
	if err := tr.Update(0, block(3)); err != nil {
		t.Errorf("mounted subtree must keep working: %v", err)
	}

	// Remount with the honest digests.
	if err := tr.Mount(1, saved); err != nil {
		t.Fatalf("honest remount must succeed: %v", err)
	}
	ok, err := tr.Verify(5, block(0x22))
	if err != nil || !ok {
		t.Error("data must verify after remount")
	}
	_ = rootBefore
}

func TestMountDetectsTampering(t *testing.T) {
	tr, _ := New(16, 4)
	tr.Update(4, block(0x11))
	saved := tr.LeafDigests(1)
	tr.Unmount(1)
	// Attacker swaps a digest while the subtree is offline.
	saved[0][0] ^= 0xff
	if err := tr.Mount(1, saved); err == nil {
		t.Error("tampered remount must be rejected")
	}
	// And the honest set still works afterwards.
	saved[0][0] ^= 0xff
	if err := tr.Mount(1, saved); err != nil {
		t.Errorf("honest remount after rejection: %v", err)
	}
}

func TestDoubleUnmountAndMountErrors(t *testing.T) {
	tr, _ := New(8, 4)
	if _, err := tr.Unmount(0); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Unmount(0); err == nil {
		t.Error("double unmount must fail")
	}
	leaves := make([]Digest, 4)
	if err := tr.Mount(1, leaves); err == nil {
		t.Error("mounting a mounted subtree must fail")
	}
	if _, err := tr.Unmount(99); err == nil {
		t.Error("out-of-range subtree must fail")
	}
}

func TestUpdateValidation(t *testing.T) {
	tr, _ := New(4, 2)
	if err := tr.Update(-1, block(0)); err == nil {
		t.Error("negative block must fail")
	}
	if err := tr.Update(4, block(0)); err == nil {
		t.Error("out-of-range block must fail")
	}
	if err := tr.Update(0, []byte{1, 2, 3}); err == nil {
		t.Error("short data must fail")
	}
}

// Property: Update then Verify succeeds for arbitrary content, and Verify
// of different content fails.
func TestUpdateVerifyQuick(t *testing.T) {
	tr, _ := New(32, 8)
	f := func(blk uint8, fill byte, wrongFill byte) bool {
		b := int(blk) % 32
		data := block(fill)
		if err := tr.Update(b, data); err != nil {
			return false
		}
		ok, err := tr.Verify(b, data)
		if err != nil || !ok {
			return false
		}
		if wrongFill == fill {
			return true
		}
		ok, err = tr.Verify(b, block(wrongFill))
		return err == nil && !ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: after unmount+honest mount, the root is unchanged.
func TestRemountPreservesRootQuick(t *testing.T) {
	f := func(blk uint8, fill byte) bool {
		tr, _ := New(16, 4)
		tr.Update(int(blk)%16, block(fill))
		root := tr.Root()
		sub := int(blk) % 4
		saved := tr.LeafDigests(sub)
		if _, err := tr.Unmount(sub); err != nil {
			return false
		}
		if err := tr.Mount(sub, saved); err != nil {
			return false
		}
		return tr.Root() == root
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestDigestsAreDistinct(t *testing.T) {
	a := HashBlock(0, block(1))
	b := HashBlock(0, block(2))
	if bytes.Equal(a[:], b[:]) {
		t.Error("distinct blocks must hash differently")
	}
}
