// Package addr defines the address arithmetic shared by every layer of the
// simulator: physical and virtual address types, page-size constants, the
// Sv39/Sv48/Sv57 virtual-address splits from the RISC-V privileged
// specification, and the NAPOT/alignment helpers used by the PMP and PMP
// Table models.
package addr

import "fmt"

// PA is a physical address. The simulator models RV64, so physical addresses
// are 64-bit values even though real implementations expose at most 56 bits.
type PA uint64

// VA is a virtual address in some address space (guest or host).
type VA uint64

// GPA is a guest-physical address, produced by a guest page-table walk and
// consumed by the nested (hgatp) walk.
type GPA uint64

// Fundamental page geometry. The paper's prototype uses 4 KiB base pages
// everywhere (the PMP Table optionally supports other granules; we model the
// 4 KiB configuration that all evaluation numbers use).
const (
	PageShift = 12
	PageSize  = 1 << PageShift
	PageMask  = PageSize - 1

	MegaPageShift = 21 // Sv39 level-1 superpage (2 MiB)
	GigaPageShift = 30 // Sv39 level-2 superpage (1 GiB)

	KiB = 1 << 10
	MiB = 1 << 20
	GiB = 1 << 30
)

// Frame returns the physical frame number of the address.
func (p PA) Frame() uint64 { return uint64(p) >> PageShift }

// Offset returns the offset of the address within its 4 KiB page.
func (p PA) Offset() uint64 { return uint64(p) & PageMask }

// PageBase returns the address of the first byte of the page containing p.
func (p PA) PageBase() PA { return p &^ PageMask }

// Line returns the cache-line index of the address for the given line size.
func (p PA) Line(lineSize uint64) uint64 { return uint64(p) / lineSize }

func (p PA) String() string { return fmt.Sprintf("PA(%#x)", uint64(p)) }

// Frame returns the virtual page number of the address.
func (v VA) Frame() uint64 { return uint64(v) >> PageShift }

// Offset returns the offset of the address within its 4 KiB page.
func (v VA) Offset() uint64 { return uint64(v) & PageMask }

// PageBase returns the address of the first byte of the page containing v.
func (v VA) PageBase() VA { return v &^ PageMask }

func (v VA) String() string { return fmt.Sprintf("VA(%#x)", uint64(v)) }

// Frame returns the guest-physical frame number of the address.
func (g GPA) Frame() uint64 { return uint64(g) >> PageShift }

// Offset returns the offset within the 4 KiB guest-physical page.
func (g GPA) Offset() uint64 { return uint64(g) & PageMask }

func (g GPA) String() string { return fmt.Sprintf("GPA(%#x)", uint64(g)) }

// Mode identifies a RISC-V address-translation scheme.
type Mode int

const (
	// Bare disables translation: VA == PA.
	Bare Mode = iota
	// Sv39 is the 3-level, 39-bit scheme (the paper's evaluation target).
	Sv39
	// Sv48 is the 4-level, 48-bit scheme.
	Sv48
	// Sv57 is the 5-level, 57-bit scheme.
	Sv57
)

func (m Mode) String() string {
	switch m {
	case Bare:
		return "Bare"
	case Sv39:
		return "Sv39"
	case Sv48:
		return "Sv48"
	case Sv57:
		return "Sv57"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Levels returns the number of page-table levels for the mode. Bare has none.
func (m Mode) Levels() int {
	switch m {
	case Sv39:
		return 3
	case Sv48:
		return 4
	case Sv57:
		return 5
	default:
		return 0
	}
}

// VABits returns the number of significant virtual-address bits.
func (m Mode) VABits() int {
	switch m {
	case Sv39:
		return 39
	case Sv48:
		return 48
	case Sv57:
		return 57
	default:
		return 64
	}
}

// VPN extracts the level-th virtual page number field of va under mode m.
// Level 0 is the leaf (lowest 9 bits above the page offset), matching the
// RISC-V specification's VPN[0].
func (m Mode) VPN(va VA, level int) uint64 {
	return (uint64(va) >> (PageShift + 9*level)) & 0x1ff
}

// Canonical reports whether va is a canonical address for the mode: bits
// above the VA width must equal the sign bit (RISC-V requires bits 63..N-1 to
// match bit N-1).
func (m Mode) Canonical(va VA) bool {
	if m == Bare {
		return true
	}
	bits := m.VABits()
	top := uint64(va) >> (bits - 1)
	allOnes := uint64(1)<<(64-bits+1) - 1
	return top == 0 || top == allOnes
}

// IsAligned reports whether a is a multiple of align (align must be a power
// of two).
func IsAligned(a uint64, align uint64) bool { return a&(align-1) == 0 }

// AlignDown rounds a down to a multiple of align (a power of two).
func AlignDown(a, align uint64) uint64 { return a &^ (align - 1) }

// AlignUp rounds a up to a multiple of align (a power of two).
func AlignUp(a, align uint64) uint64 { return (a + align - 1) &^ (align - 1) }

// IsPow2 reports whether x is a power of two. Zero is not a power of two.
func IsPow2(x uint64) bool { return x != 0 && x&(x-1) == 0 }

// NAPOTEncode encodes the region [base, base+size) as a RISC-V
// naturally-aligned power-of-two pmpaddr value. size must be a power of two
// ≥ 8 and base must be size-aligned. The returned value goes in a pmpaddr
// register with A=NAPOT.
func NAPOTEncode(base, size uint64) (uint64, error) {
	if !IsPow2(size) || size < 8 {
		return 0, fmt.Errorf("napot: size %#x is not a power of two ≥ 8", size)
	}
	if !IsAligned(base, size) {
		return 0, fmt.Errorf("napot: base %#x not aligned to size %#x", base, size)
	}
	// pmpaddr holds address bits [55:2]; a NAPOT region of 2^(k+3) bytes sets
	// the low k bits to 1 preceded by a 0.
	return base>>2 | (size/8 - 1), nil
}

// NAPOTDecode recovers (base, size) from a pmpaddr register value encoded in
// NAPOT form.
func NAPOTDecode(pmpaddr uint64) (base, size uint64) {
	// Count trailing ones.
	k := 0
	for v := pmpaddr; v&1 == 1; v >>= 1 {
		k++
	}
	size = uint64(8) << k
	base = (pmpaddr &^ (uint64(1)<<k - 1)) << 2
	return base, size
}

// Range is a half-open physical address range [Base, Base+Size).
type Range struct {
	Base PA
	Size uint64
}

// End returns the first address past the range.
func (r Range) End() PA { return r.Base + PA(r.Size) }

// Contains reports whether pa lies inside the range.
func (r Range) Contains(pa PA) bool { return pa >= r.Base && pa < r.End() }

// ContainsRange reports whether the whole of o lies inside r.
func (r Range) ContainsRange(o Range) bool {
	return o.Base >= r.Base && o.End() <= r.End()
}

// Overlaps reports whether the two ranges share any byte.
func (r Range) Overlaps(o Range) bool {
	return r.Base < o.End() && o.Base < r.End()
}

func (r Range) String() string {
	return fmt.Sprintf("[%#x, %#x)", uint64(r.Base), uint64(r.End()))
}
