package addr

import (
	"testing"
	"testing/quick"
)

func TestPageMath(t *testing.T) {
	p := PA(0x8000_1abc)
	if got := p.Frame(); got != 0x80001 {
		t.Errorf("Frame = %#x, want 0x80001", got)
	}
	if got := p.Offset(); got != 0xabc {
		t.Errorf("Offset = %#x, want 0xabc", got)
	}
	if got := p.PageBase(); got != 0x8000_1000 {
		t.Errorf("PageBase = %#x, want 0x80001000", uint64(got))
	}
	v := VA(0x4000_2fff)
	if v.Frame() != 0x40002 || v.Offset() != 0xfff {
		t.Errorf("VA frame/offset wrong: %#x %#x", v.Frame(), v.Offset())
	}
}

func TestModeLevels(t *testing.T) {
	cases := []struct {
		m      Mode
		levels int
		bits   int
	}{
		{Bare, 0, 64},
		{Sv39, 3, 39},
		{Sv48, 4, 48},
		{Sv57, 5, 57},
	}
	for _, c := range cases {
		if got := c.m.Levels(); got != c.levels {
			t.Errorf("%v.Levels = %d, want %d", c.m, got, c.levels)
		}
		if got := c.m.VABits(); got != c.bits {
			t.Errorf("%v.VABits = %d, want %d", c.m, got, c.bits)
		}
	}
}

func TestVPNSplit(t *testing.T) {
	// Construct a VA with distinct VPN fields: VPN[2]=5, VPN[1]=3, VPN[0]=7.
	va := VA(5<<30 | 3<<21 | 7<<12 | 0x123)
	if got := Sv39.VPN(va, 2); got != 5 {
		t.Errorf("VPN[2] = %d, want 5", got)
	}
	if got := Sv39.VPN(va, 1); got != 3 {
		t.Errorf("VPN[1] = %d, want 3", got)
	}
	if got := Sv39.VPN(va, 0); got != 7 {
		t.Errorf("VPN[0] = %d, want 7", got)
	}
}

func TestCanonical(t *testing.T) {
	if !Sv39.Canonical(VA(0x3f_ffff_ffff)) {
		t.Error("highest positive Sv39 VA should be canonical")
	}
	if Sv39.Canonical(VA(0x40_0000_0000)) {
		t.Error("bit 38 set without sign extension must be non-canonical")
	}
	if !Sv39.Canonical(VA(0xffff_ffc0_0000_0000)) {
		t.Error("properly sign-extended negative VA should be canonical")
	}
	if !Bare.Canonical(VA(0xdead_beef_dead_beef)) {
		t.Error("Bare mode accepts every address")
	}
}

func TestAlignment(t *testing.T) {
	if AlignDown(0x1fff, 0x1000) != 0x1000 {
		t.Error("AlignDown failed")
	}
	if AlignUp(0x1001, 0x1000) != 0x2000 {
		t.Error("AlignUp failed")
	}
	if AlignUp(0x1000, 0x1000) != 0x1000 {
		t.Error("AlignUp of aligned value must be identity")
	}
	if !IsPow2(4096) || IsPow2(0) || IsPow2(12) {
		t.Error("IsPow2 wrong")
	}
}

func TestNAPOTRoundTrip(t *testing.T) {
	enc, err := NAPOTEncode(0x8000_0000, 0x1000)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	base, size := NAPOTDecode(enc)
	if base != 0x8000_0000 || size != 0x1000 {
		t.Errorf("decode = (%#x, %#x), want (0x80000000, 0x1000)", base, size)
	}
	if _, err := NAPOTEncode(0x1234, 0x1000); err == nil {
		t.Error("unaligned base must fail")
	}
	if _, err := NAPOTEncode(0x1000, 0x1001); err == nil {
		t.Error("non-power-of-two size must fail")
	}
}

// Property: NAPOT encode/decode round-trips for all valid (base,size) pairs.
func TestNAPOTRoundTripQuick(t *testing.T) {
	f := func(baseSeed uint32, sizeShift uint8) bool {
		shift := 3 + int(sizeShift%28) // sizes 8 B .. 1 GiB
		size := uint64(1) << shift
		base := (uint64(baseSeed) << 12) &^ (size - 1)
		enc, err := NAPOTEncode(base, size)
		if err != nil {
			return false
		}
		b, s := NAPOTDecode(enc)
		return b == base && s == size
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRange(t *testing.T) {
	r := Range{Base: 0x1000, Size: 0x2000}
	if !r.Contains(0x1000) || !r.Contains(0x2fff) || r.Contains(0x3000) || r.Contains(0xfff) {
		t.Error("Contains is wrong at boundaries")
	}
	if !r.Overlaps(Range{Base: 0x2fff, Size: 1}) {
		t.Error("single-byte overlap at the end missed")
	}
	if r.Overlaps(Range{Base: 0x3000, Size: 0x1000}) {
		t.Error("adjacent ranges must not overlap")
	}
	if !r.ContainsRange(Range{Base: 0x1800, Size: 0x800}) {
		t.Error("inner range must be contained")
	}
	if r.ContainsRange(Range{Base: 0x1800, Size: 0x2000}) {
		t.Error("straddling range must not be contained")
	}
}

// Property: AlignDown(x) ≤ x < AlignDown(x)+align and AlignUp ≥ x.
func TestAlignQuick(t *testing.T) {
	f := func(x uint64, shift uint8) bool {
		align := uint64(1) << (shift % 30)
		d := AlignDown(x, align)
		u := AlignUp(x, align)
		if d > x || x-d >= align {
			return false
		}
		if u < x && u != 0 { // u==0 only on overflow wrap
			return false
		}
		return IsAligned(d, align)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStringers(t *testing.T) {
	if PA(0x1234).String() != "PA(0x1234)" {
		t.Errorf("PA.String = %s", PA(0x1234))
	}
	if VA(0xabc).String() != "VA(0xabc)" {
		t.Errorf("VA.String = %s", VA(0xabc))
	}
	if GPA(0x99).String() != "GPA(0x99)" {
		t.Errorf("GPA.String = %s", GPA(0x99))
	}
	for m, want := range map[Mode]string{Bare: "Bare", Sv39: "Sv39", Sv48: "Sv48", Sv57: "Sv57", Mode(9): "Mode(9)"} {
		if m.String() != want {
			t.Errorf("%d.String = %s, want %s", int(m), m, want)
		}
	}
	r := Range{Base: 0x1000, Size: 0x1000}
	if r.String() != "[0x1000, 0x2000)" {
		t.Errorf("Range.String = %s", r)
	}
}

func TestGPAAndLineHelpers(t *testing.T) {
	g := GPA(0x12345)
	if g.Frame() != 0x12 || g.Offset() != 0x345 {
		t.Errorf("GPA frame/offset: %#x %#x", g.Frame(), g.Offset())
	}
	if PA(0x1000).Line(64) != 0x40 {
		t.Errorf("Line = %#x", PA(0x1000).Line(64))
	}
	if VA(0x2fff).PageBase() != 0x2000 {
		t.Error("VA.PageBase wrong")
	}
}
