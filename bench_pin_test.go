// Latency pin for the PR-6 tentpole: the steady-state TLB-hit access must
// stay at or below 40 ns/op (BENCH_pr6.json records ~25 ns/op post-change,
// down from ~120 ns/op when Result was returned by value through the access
// chain). Excluded from race builds — instrumentation inflates the hot path
// far past the bound and would only measure the race detector.
//
//go:build !race

package main_test

import "testing"

// pinNsPerOp runs bench up to attempts times and returns the best ns/op —
// best-of-N filters scheduler noise on shared CI machines while still
// failing hard when the hot path structurally regresses.
func pinNsPerOp(bench func(b *testing.B), attempts int) float64 {
	best := 0.0
	for i := 0; i < attempts; i++ {
		r := testing.Benchmark(bench)
		ns := float64(r.T.Nanoseconds()) / float64(r.N)
		if i == 0 || ns < best {
			best = ns
		}
		if best <= 40 {
			break
		}
	}
	return best
}

// TestTLBHitAccessLatencyPin enforces the ISSUE 6 acceptance bound:
// BenchmarkTLBHitAccess ≤ 40 ns/op. A failure here means a large-struct
// copy, an allocation, or a map lookup crept back into the per-access path.
func TestTLBHitAccessLatencyPin(t *testing.T) {
	if testing.Short() {
		t.Skip("timing pin; skipped with -short")
	}
	if ns := pinNsPerOp(BenchmarkTLBHitAccess, 3); ns > 40 {
		t.Errorf("TLB-hit access costs %.1f ns/op (best of 3), want ≤ 40", ns)
	}
}

// TestAccessBatchLatencyPin holds the batched entry point to the same bound:
// amortization must never make a batched reference dearer than a scalar one.
func TestAccessBatchLatencyPin(t *testing.T) {
	if testing.Short() {
		t.Skip("timing pin; skipped with -short")
	}
	if ns := pinNsPerOp(BenchmarkAccessBatchTLBHit, 3); ns > 40 {
		t.Errorf("batched TLB-hit access costs %.1f ns/op (best of 3), want ≤ 40", ns)
	}
}
