# HPMP reproduction — convenience targets. Everything is plain `go` under
# the hood; the Makefile only groups the common flows.

GO ?= go

.PHONY: all build vet test test-short race smoke obs-smoke replay-smoke pipelines-smoke daemon-smoke fuzz bench eval eval-quick examples metrics-baseline metrics-diff clean

all: build vet test race smoke fuzz

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# Race-detector pass over the whole module (the experiment runner is
# concurrent; this keeps it honest).
race:
	$(GO) test -race ./...

# End-to-end smoke: the full quick evaluation through the CLI.
smoke:
	$(GO) run ./cmd/hpmpsim -quick run all > /dev/null

# Observability smoke: one quick experiment with tracing and metrics
# export on, leaving the artifacts in obs-out/ for inspection (CI uploads
# them). The trace must parse back through cmd/hpmptrace.
obs-smoke:
	$(GO) run ./cmd/hpmpsim -quick -progress \
		-trace obs-out/traces -trace-every 16 \
		-metrics-dir obs-out/metrics \
		run fig10 > /dev/null
	$(GO) run ./cmd/hpmptrace -read obs-out/traces/fig10.trace.jsonl > /dev/null

# Replay smoke: capture a tiny trace from one quick experiment, verify the
# round-trip property through cmd/hpmptrace, then replay it twice through
# cmd/hpmpsim and diff the two metric sets — a faithful, deterministic
# replay must come out byte-identical (exit 0). Exercises the whole
# record -> parse -> replay -> metrics -> diff pipeline end to end.
replay-smoke:
	rm -rf obs-out/replay
	$(GO) run ./cmd/hpmpsim -quick \
		-trace obs-out/replay/traces -trace-every 1 \
		run fig10 > /dev/null
	$(GO) run ./cmd/hpmptrace -replay-check obs-out/replay/traces/fig10.trace.jsonl
	$(GO) run ./cmd/hpmpsim -metrics-dir obs-out/replay/a -id fig10 \
		replay obs-out/replay/traces/fig10.trace.jsonl > /dev/null
	$(GO) run ./cmd/hpmpsim -metrics-dir obs-out/replay/b -id fig10 \
		replay obs-out/replay/traces/fig10.trace.jsonl > /dev/null
	$(GO) run ./cmd/hpmpsim diff obs-out/replay/a obs-out/replay/b

# Pipelines smoke: capture one quick trace, then drive it through the
# config-specialized access pipeline of every isolation mode (DESIGN.md
# §6.2), including the degenerate no-cache geometry. A non-zero exit from
# any replay means a pipeline diverged from the recording or failed to
# assemble.
pipelines-smoke:
	rm -rf obs-out/pipelines
	$(GO) run ./cmd/hpmpsim -quick \
		-trace obs-out/pipelines/traces -trace-every 1 \
		run fig10 > /dev/null
	for mode in none pmp pmpt hpmp; do \
		$(GO) run ./cmd/hpmpsim -mode $$mode -id fig10-$$mode \
			replay obs-out/pipelines/traces/fig10.trace.jsonl > /dev/null || exit 1; \
	done
	$(GO) run ./cmd/hpmpsim -mode pmpt -l2tlb 0 -pwc 0 -pmptw-cache 0 \
		-id fig10-nocache replay obs-out/pipelines/traces/fig10.trace.jsonl > /dev/null
	$(GO) run ./cmd/hpmpsim -mode hpmp -scalar -id fig10-scalar \
		replay obs-out/pipelines/traces/fig10.trace.jsonl > /dev/null

# Daemon smoke: the hermetic end-to-end test of the real hpmpsimd binary —
# boot on an ephemeral port, submit a traced quick experiment job and a
# replay job over HTTP, poll both to done, scrape /metrics, download the
# trace and verify it with `hpmptrace -replay-check`, then SIGTERM and
# require a clean drain (exit 0). See cmd/hpmpsimd/smoke_test.go.
daemon-smoke:
	$(GO) test -run TestDaemonSmoke -count=1 -v ./cmd/hpmpsimd

# Short fuzz pass over the register-format round trips and the PMPTW
# walker-vs-oracle cross-check (go test -fuzz takes one target at a time).
# The weekly fuzz workflow overrides FUZZTIME for a longer soak.
FUZZTIME ?= 30s
fuzz:
	$(GO) test ./internal/pmp -run '^$$' -fuzz FuzzPMPEncodeDecode -fuzztime $(FUZZTIME)
	$(GO) test ./internal/pmpt -run '^$$' -fuzz FuzzPMPTWalk -fuzztime $(FUZZTIME)
	$(GO) test ./internal/obs -run '^$$' -fuzz FuzzReadTrace -fuzztime $(FUZZTIME)

# Refresh the committed cross-commit metrics baseline (quick sizes, JSON
# only — the Prometheus text is derived output). Run this when an
# intentional behaviour change shifts counters or latency histograms, and
# commit the result together with the change; TestMetricsMatchCommittedBaseline
# and the CI metrics-diff job gate against it.
METRICS_BASELINE := internal/integration/testdata/metrics_baseline
metrics-baseline:
	rm -rf $(METRICS_BASELINE)
	$(GO) run ./cmd/hpmpsim -quick -metrics-dir $(METRICS_BASELINE) run all > /dev/null
	rm -f $(METRICS_BASELINE)/*.prom

# Diff a fresh quick run against the committed baseline, like CI does.
# WALL_TOL: wall-time rows fail the gate beyond this relative drift.
# Measured across 5 quick `run all` passes on one host, per-experiment wall
# spread reaches ~15x on millisecond-scale experiments (scheduler noise
# dominates; see EXPERIMENTS.md), so 20 is the tightest bound that does not
# flake — it exists to catch order-of-magnitude blowups, not small drift.
WALL_TOL := 20
metrics-diff:
	rm -rf obs-out/metrics-current
	$(GO) run ./cmd/hpmpsim -quick -metrics-dir obs-out/metrics-current run all > /dev/null
	$(GO) run ./cmd/hpmpsim -diff-json obs-out/metrics-diff.json -wall-tol $(WALL_TOL) \
		diff $(METRICS_BASELINE) obs-out/metrics-current

# One testing.B target per paper table/figure (quick sizes).
bench:
	$(GO) test -bench=. -benchmem -run '^$$' .

# The full evaluation: every table and figure at full size.
eval:
	$(GO) run ./cmd/hpmpsim run all

eval-quick:
	$(GO) run ./cmd/hpmpsim -quick run all

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/serverless
	$(GO) run ./examples/redis
	$(GO) run ./examples/virtualization
	$(GO) run ./examples/attestation

# The artifacts the exercise asks for.
artifacts:
	$(GO) test ./... 2>&1 | tee test_output.txt
	$(GO) test -bench=. -benchmem ./... 2>&1 | tee bench_output.txt

clean:
	$(GO) clean ./...
	rm -f test_output.txt bench_output.txt
	rm -rf obs-out
